//! Property-based tests for the bus engine: conservation, timing and
//! trace invariants under arbitrary workloads.

use proptest::prelude::*;
use socsim::arbiter::FixedOrderArbiter;
use socsim::{BusConfig, Cycle, MasterId, SlaveId, SystemBuilder, TrafficSource, Transaction};
use std::collections::VecDeque;

/// Replays an arbitrary (sorted) list of transactions.
struct Replay(VecDeque<Transaction>);

impl TrafficSource for Replay {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.0.front()?.issued_at() <= now {
            self.0.pop_front()
        } else {
            None
        }
    }
}

fn replay_from(mut arrivals: Vec<(u64, u32)>) -> Box<dyn TrafficSource> {
    arrivals.sort_by_key(|&(c, _)| c);
    Box::new(Replay(
        arrivals
            .into_iter()
            .map(|(c, w)| Transaction::new(SlaveId::new(0), w, Cycle::new(c)))
            .collect(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn words_conserved_for_any_workload(
        traffic in prop::collection::vec(
            prop::collection::vec((0u64..2_000, 1u32..40), 0..40),
            1..5,
        ),
        max_burst in 1u32..40,
    ) {
        let n = traffic.len();
        let issued: u64 = traffic
            .iter()
            .flatten()
            .map(|&(_, w)| u64::from(w))
            .sum();
        let mut builder =
            SystemBuilder::new(BusConfig { max_burst, ..BusConfig::default() });
        for (i, arrivals) in traffic.into_iter().enumerate() {
            builder = builder.master(format!("m{i}"), replay_from(arrivals));
        }
        let mut system = builder
            .arbiter(FixedOrderArbiter::new(n))
            .build()
            .expect("valid system");
        // Long enough for everything to drain: arrivals end by 2 000 and
        // total work is bounded by the issued word count.
        system.run(2_000 + issued + 10);
        let stats = system.stats();
        let transferred: u64 = (0..n).map(|i| stats.master(MasterId::new(i)).words).sum();
        prop_assert_eq!(transferred, issued, "all issued words must transfer");
        for i in 0..n {
            let id = MasterId::new(i);
            prop_assert_eq!(system.master(id).backlog_words(), 0, "master {} drained", i);
            let m = stats.master(id);
            prop_assert_eq!(m.completed_words, m.words, "all transactions completed");
            prop_assert_eq!(m.transactions, system.master(id).issued_transactions());
        }
    }

    #[test]
    fn latency_bounds_hold(
        words in 1u32..60,
        competitors in 0usize..3,
        max_burst in 1u32..32,
    ) {
        // One observed transaction at cycle 0 plus competitors that are
        // idle: its latency must be exactly ceil(words) cycles (one word
        // per cycle, immediate grant, re-arbitration is pipelined).
        let mut builder =
            SystemBuilder::new(BusConfig { max_burst, ..BusConfig::default() });
        builder = builder.master("observed", replay_from(vec![(0, words)]));
        for i in 0..competitors {
            builder = builder.master(format!("idle{i}"), replay_from(vec![]));
        }
        let mut system = builder
            .arbiter(FixedOrderArbiter::new(competitors + 1))
            .build()
            .expect("valid system");
        system.run(u64::from(words) + 5);
        let m = system.stats().master(MasterId::new(0));
        prop_assert_eq!(m.transactions, 1);
        prop_assert_eq!(m.total_latency, u64::from(words));
        prop_assert_eq!(m.total_wait, 0);
    }

    #[test]
    fn busy_plus_idle_covers_every_cycle(
        arrivals in prop::collection::vec((0u64..500, 1u32..20), 0..30),
    ) {
        let total: u64 = arrivals.iter().map(|&(_, w)| u64::from(w)).sum();
        let cycles = 500 + total + 5;
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("m", replay_from(arrivals))
            .arbiter(FixedOrderArbiter::new(1))
            // Grant events share the capacity with word/idle events.
            .trace_capacity(3 * cycles as usize)
            .build()
            .expect("valid system");
        system.run(cycles);
        let stats = system.stats();
        prop_assert_eq!(stats.busy_cycles, total);
        prop_assert!(stats.busy_cycles + stats.stall_cycles <= stats.cycles);
        // The trace accounts for every cycle as a word or an idle mark.
        let rendered = system.trace().render_owners(0..cycles);
        let words = rendered.chars().filter(|c| c.is_ascii_digit()).count() as u64;
        let idles = rendered.chars().filter(|&c| c == '.').count() as u64;
        prop_assert_eq!(words, total);
        prop_assert_eq!(words + idles, cycles);
    }
}
