//! Observability: windowed metrics sampled from the cycle kernel.
//!
//! The paper's entire evaluation is built on *observing* the bus —
//! bandwidth shares (Fig. 4/6), latency distributions (Fig. 5/12) and
//! crossover behaviour under bursty traffic — yet end-of-run aggregates
//! hide all of the dynamics. This module adds a metric registry that the
//! [`crate::System`] samples every *N* cycles into a time-series, so
//! experiments can plot per-window bandwidth shares, contention and
//! latency percentiles over simulated time.
//!
//! Design constraints, in order:
//!
//! 1. **Off by default, free when off.** A system built without
//!    [`crate::SystemBuilder::metrics_window`] carries `Option::None`
//!    and pays one branch per cycle.
//! 2. **Zero allocation on the hot path.** Per-cycle work is a counter
//!    increment and a boundary compare; all vectors are preallocated at
//!    build time. Allocation happens only once per *window* (pushing the
//!    finished [`WindowSample`]), never per cycle.
//! 3. **Deterministic.** Metrics read the kernel's own deterministic
//!    counters ([`crate::BusStats`]); enabling them never changes the
//!    cycle-by-cycle schedule, so `--jobs 1` and `--jobs N` runs stay
//!    byte-identical with metrics on.
//!
//! The building blocks — [`Counter`], [`Gauge`] and
//! [`WindowedHistogram`] — are public so custom drivers (the ATM switch,
//! multi-channel systems) can assemble their own registries.

use crate::cycle::Cycle;
use crate::master::MasterPort;
use crate::stats::BusStats;

/// A monotone counter with a window marker, the basic unit of the
/// metric registry.
///
/// The counter tracks a cumulative total plus the value it had when the
/// current window opened; [`Counter::roll`] closes the window and
/// returns the in-window delta. Totals may be accumulated directly
/// ([`Counter::add`]) or mirrored from an external cumulative source
/// ([`Counter::observe`]), which is how [`BusMetrics`] windows the
/// kernel's [`BusStats`] counters without touching the hot path.
///
/// ```
/// use socsim::metrics::Counter;
/// let mut grants = Counter::new();
/// grants.add(3);
/// assert_eq!(grants.window(), 3);
/// assert_eq!(grants.roll(), 3);      // close window 0
/// grants.observe(5);                 // cumulative total is now 5
/// assert_eq!(grants.window(), 2);    // 2 of them in window 1
/// assert_eq!(grants.total(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    total: u64,
    window_base: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments the cumulative total by `n`.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Sets the cumulative total from an external monotone source.
    /// Totals never go backwards; a smaller value is ignored.
    pub fn observe(&mut self, total: u64) {
        self.total = self.total.max(total);
    }

    /// The cumulative total since creation.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count accumulated in the current window.
    pub fn window(&self) -> u64 {
        self.total - self.window_base
    }

    /// Closes the current window: returns the in-window count and opens
    /// a fresh window at the current total.
    pub fn roll(&mut self) -> u64 {
        let w = self.window();
        self.window_base = self.total;
        w
    }

    /// Discards all history (used when statistics are reset after a
    /// warm-up period).
    pub fn reset(&mut self) {
        *self = Counter::default();
    }
}

/// A point-in-time measurement, sampled (not accumulated) at window
/// boundaries — e.g. a master's queue depth.
///
/// ```
/// use socsim::metrics::Gauge;
/// let mut depth = Gauge::new();
/// depth.set(4);
/// assert_eq!(depth.get(), 4);
/// depth.set(1);
/// assert_eq!(depth.get(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: u64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Records the current value.
    pub fn set(&mut self, value: u64) {
        self.value = value;
    }

    /// The most recently recorded value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A log₂-bucketed histogram that resets every window, for per-window
/// latency distributions at constant memory.
///
/// Bucket *k* counts samples in `[2^k, 2^(k+1))`, the same coarse
/// geometry as [`crate::stats::LatencyHistogram`]; quantiles are upper
/// bounds within a factor of two. Unlike the run-length histogram it is
/// cheap to snapshot and clear once per window.
///
/// ```
/// use socsim::metrics::WindowedHistogram;
/// let mut h = WindowedHistogram::new();
/// for latency in [1, 2, 3, 100] {
///     h.record(latency);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.5), Some(4));
/// let summary = h.roll();               // snapshot + clear
/// assert_eq!(summary.count, 4);
/// assert_eq!(summary.max, 100);
/// assert_eq!(h.count(), 0);             // fresh window
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedHistogram {
    buckets: [u64; 64],
    count: u64,
    max: u64,
}

impl WindowedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        WindowedHistogram { buckets: [0; 64], count: 0, max: 0 }
    }

    /// Records one sample (e.g. a transaction latency in cycles).
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 { 0 } else { 63 - value.leading_zeros() as usize };
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded in the current window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound (within 2×) on the `q`-quantile of the current
    /// window, or `None` if the window is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64.checked_shl(k as u32 + 1).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Closes the window: returns a compact summary and clears the
    /// histogram for the next window.
    pub fn roll(&mut self) -> LatencySummary {
        let summary = LatencySummary {
            count: self.count,
            p50: self.quantile(0.5).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            max: self.max,
        };
        self.buckets = [0; 64];
        self.count = 0;
        self.max = 0;
        summary
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new()
    }
}

/// Compact per-window latency distribution: sample count, p50/p99 upper
/// bounds (within 2×, from the log₂ buckets) and the exact maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Transactions completed in the window.
    pub count: u64,
    /// Upper bound (within 2×) on the median latency; 0 when empty.
    pub p50: u64,
    /// Upper bound (within 2×) on the 99th-percentile latency; 0 when
    /// empty.
    pub p99: u64,
    /// Exact largest latency observed in the window; 0 when empty.
    pub max: u64,
}

/// One master's activity within a single window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterWindow {
    /// Words the master transferred in the window.
    pub words: u64,
    /// Grants the master won in the window.
    pub grants: u64,
    /// Transactions queued at the master's port at the window boundary
    /// (a point-in-time gauge, not an accumulation).
    pub queue_depth: u64,
}

/// One sample of the time-series: everything the bus did during one
/// window of `cycles` simulated cycles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSample {
    /// First cycle of the window.
    pub start: Cycle,
    /// Cycles covered (smaller than the configured window only for a
    /// flushed partial tail).
    pub cycles: u64,
    /// Cycles in which a word transferred.
    pub busy: u64,
    /// Cycles lost to arbitration overhead, wait states or faults.
    pub stalls: u64,
    /// Cycles in which the bus idled (no request pending).
    pub idle: u64,
    /// Grants issued in the window.
    pub grants: u64,
    /// Arbitration decisions taken with two or more masters pending —
    /// the window's contention count.
    pub contended_arbitrations: u64,
    /// Failed attempts re-queued for retry in the window.
    pub retries: u64,
    /// Injected fault disturbances (slave errors, dropped/corrupted
    /// grants) in the window.
    pub faults: u64,
    /// Masters with a request pending at the window boundary (gauge).
    pub pending_masters: u64,
    /// Latency distribution of transactions completed in the window.
    pub latency: LatencySummary,
    /// Per-master activity, indexed by master id.
    pub per_master: Vec<MasterWindow>,
}

impl WindowSample {
    /// Fraction of the window's cycles spent transferring master `m`'s
    /// words — the per-window equivalent of
    /// [`crate::BusStats::bandwidth_fraction`].
    pub fn bandwidth_share(&self, m: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.per_master[m].words as f64 / self.cycles as f64
        }
    }

    /// Fraction of the window's cycles in which a word transferred.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy as f64 / self.cycles as f64
        }
    }
}

/// Bank of windowed counters mirroring the kernel's cumulative
/// [`BusStats`] counters.
#[derive(Debug, Clone)]
struct CounterBank {
    busy: Counter,
    stalls: Counter,
    grants: Counter,
    contended: Counter,
    retries: Counter,
    faults: Counter,
    words: Vec<Counter>,
    master_grants: Vec<Counter>,
}

impl CounterBank {
    fn new(masters: usize) -> Self {
        CounterBank {
            busy: Counter::new(),
            stalls: Counter::new(),
            grants: Counter::new(),
            contended: Counter::new(),
            retries: Counter::new(),
            faults: Counter::new(),
            words: vec![Counter::new(); masters],
            master_grants: vec![Counter::new(); masters],
        }
    }

    fn reset(&mut self) {
        self.busy.reset();
        self.stalls.reset();
        self.grants.reset();
        self.contended.reset();
        self.retries.reset();
        self.faults.reset();
        for c in &mut self.words {
            c.reset();
        }
        for c in &mut self.master_grants {
            c.reset();
        }
    }
}

/// The metric registry the [`crate::System`] drives: windowed counters
/// over the kernel's statistics, per-master gauges, and a per-window
/// latency histogram, sampled every `window` cycles into a time-series
/// of [`WindowSample`]s.
///
/// Constructed by [`crate::SystemBuilder::metrics_window`]; read back
/// through [`crate::System::metrics`]. See the module docs for the cost
/// model.
#[derive(Debug, Clone)]
pub struct BusMetrics {
    window: u64,
    cycles_in_window: u64,
    window_start: Cycle,
    bank: CounterBank,
    latency: WindowedHistogram,
    samples: Vec<WindowSample>,
}

impl BusMetrics {
    /// A registry sampling every `window` cycles for `masters` masters.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (the builder validates this before
    /// construction).
    pub fn new(window: u64, masters: usize) -> Self {
        assert!(window > 0, "metrics window must be at least 1 cycle");
        BusMetrics {
            window,
            cycles_in_window: 0,
            window_start: Cycle::ZERO,
            bank: CounterBank::new(masters),
            latency: WindowedHistogram::new(),
            samples: Vec::new(),
        }
    }

    /// The configured window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The completed windows sampled so far, in time order.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Records the latency of a transaction that completed this cycle.
    #[inline]
    pub fn note_completion(&mut self, latency: u64) {
        self.latency.record(latency);
    }

    /// Counts one elapsed cycle and, at a window boundary, closes the
    /// window: rolls every counter against `stats`, samples the
    /// per-master queue-depth gauges from `masters`, and appends the
    /// finished [`WindowSample`]. Called once per [`crate::System::step`].
    #[inline]
    pub fn end_cycle(&mut self, now: Cycle, stats: &BusStats, masters: &[MasterPort]) {
        self.cycles_in_window += 1;
        if self.cycles_in_window >= self.window {
            self.close_window(now, stats, masters);
        }
    }

    /// Counts `delta` elapsed cycles starting at `start` in one step,
    /// closing windows at the exact boundary cycles they would have
    /// closed at under per-cycle sampling — the Δ-cycle aware form of
    /// [`BusMetrics::end_cycle`] used when the fast-forward kernel
    /// jumps over an idle span.
    ///
    /// Sound only for spans in which the observed state is frozen: no
    /// grants, transfers, retries or faults happen, and no master's
    /// request state changes (exactly the spans the kernel skips).
    /// Every window closed inside the span then rolls zero deltas and
    /// samples the same gauges per-cycle sampling would have, so the
    /// resulting time-series is identical.
    pub fn skip_cycles(
        &mut self,
        start: Cycle,
        delta: u64,
        stats: &BusStats,
        masters: &[MasterPort],
    ) {
        let mut remaining = delta;
        let mut cursor = start;
        while remaining > 0 {
            let to_boundary = self.window - self.cycles_in_window;
            if remaining < to_boundary {
                self.cycles_in_window += remaining;
                return;
            }
            // The window's last counted cycle — `close_window` derives
            // the next window start from it, as `end_cycle` would.
            let last = cursor + (to_boundary - 1);
            self.cycles_in_window = self.window;
            self.close_window(last, stats, masters);
            remaining -= to_boundary;
            cursor = last + 1;
        }
    }

    /// Flushes a partial tail window, if any cycles have elapsed since
    /// the last boundary. Call after the final [`crate::System::run`];
    /// the flushed sample reports its true (shorter) `cycles` span.
    pub fn flush(&mut self, now: Cycle, stats: &BusStats, masters: &[MasterPort]) {
        if self.cycles_in_window > 0 {
            self.close_window(now, stats, masters);
        }
    }

    /// Discards all windows and re-baselines every counter at zero.
    /// Called by [`crate::System::reset_stats`] so that, like the
    /// aggregate statistics, the time-series covers only the measured
    /// (post-warm-up) span. `next` is the first cycle of the new
    /// measurement window.
    pub fn reset(&mut self, next: Cycle) {
        self.samples.clear();
        self.bank.reset();
        self.latency = WindowedHistogram::new();
        self.cycles_in_window = 0;
        self.window_start = next;
    }

    fn close_window(&mut self, now: Cycle, stats: &BusStats, masters: &[MasterPort]) {
        let bank = &mut self.bank;
        bank.busy.observe(stats.busy_cycles);
        bank.stalls.observe(stats.stall_cycles);
        bank.grants.observe(stats.grants);
        bank.contended.observe(stats.contended_arbitrations);
        bank.retries.observe(stats.retries);
        bank.faults.observe(stats.fault_disturbances());
        let cycles = self.cycles_in_window;
        let busy = bank.busy.roll();
        let stalls = bank.stalls.roll();
        let mut pending = 0u64;
        let per_master: Vec<MasterWindow> = masters
            .iter()
            .enumerate()
            .map(|(i, port)| {
                bank.words[i].observe(stats.master(port.id()).words);
                bank.master_grants[i].observe(stats.master(port.id()).grants);
                if port.is_requesting() {
                    pending += 1;
                }
                let mut depth = Gauge::new();
                depth.set(port.backlog_transactions() as u64);
                MasterWindow {
                    words: bank.words[i].roll(),
                    grants: bank.master_grants[i].roll(),
                    queue_depth: depth.get(),
                }
            })
            .collect();
        self.samples.push(WindowSample {
            start: self.window_start,
            cycles,
            busy,
            stalls,
            idle: cycles.saturating_sub(busy + stalls),
            grants: bank.grants.roll(),
            contended_arbitrations: bank.contended.roll(),
            retries: bank.retries.roll(),
            faults: bank.faults.roll(),
            pending_masters: pending,
            latency: self.latency.roll(),
            per_master,
        });
        self.cycles_in_window = 0;
        self.window_start = now + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MasterId;

    #[test]
    fn counter_windows_roll_independently_of_totals() {
        let mut c = Counter::new();
        c.add(10);
        assert_eq!(c.roll(), 10);
        c.observe(25);
        c.observe(25); // idempotent
        assert_eq!(c.window(), 15);
        assert_eq!(c.roll(), 15);
        assert_eq!(c.roll(), 0);
        assert_eq!(c.total(), 25);
        c.observe(20); // monotone: never goes backwards
        assert_eq!(c.total(), 25);
        c.reset();
        assert_eq!((c.total(), c.window()), (0, 0));
    }

    #[test]
    fn windowed_histogram_resets_between_windows() {
        let mut h = WindowedHistogram::new();
        for v in [3u64, 5, 9] {
            h.record(v);
        }
        let s1 = h.roll();
        assert_eq!(s1.count, 3);
        assert_eq!(s1.max, 9);
        assert!(s1.p50 >= 3 && s1.p50 <= 8, "p50 bound {}", s1.p50);
        let s2 = h.roll();
        assert_eq!(s2, LatencySummary::default());
    }

    #[test]
    fn empty_window_sample_is_well_defined() {
        let sample = WindowSample {
            cycles: 0,
            per_master: vec![MasterWindow::default()],
            ..Default::default()
        };
        assert_eq!(sample.bandwidth_share(0), 0.0);
        assert_eq!(sample.utilization(), 0.0);
    }

    fn port_with_backlog(i: usize, txns: usize) -> MasterPort {
        let mut port = MasterPort::new(MasterId::new(i), format!("m{i}"));
        for _ in 0..txns {
            port.enqueue(crate::request::Transaction::new(
                crate::ids::SlaveId::new(0),
                4,
                Cycle::ZERO,
            ));
        }
        port
    }

    #[test]
    fn windows_close_on_schedule_and_flush_partials() {
        let mut metrics = BusMetrics::new(10, 2);
        let ports = vec![port_with_backlog(0, 2), port_with_backlog(1, 0)];
        let mut stats = BusStats::new(2);
        for c in 0..25u64 {
            stats.record_cycle();
            stats.record_words(MasterId::new(0), 1);
            metrics.end_cycle(Cycle::new(c), &stats, &ports);
        }
        assert_eq!(metrics.samples().len(), 2, "two full windows of 10");
        metrics.flush(Cycle::new(24), &stats, &ports);
        assert_eq!(metrics.samples().len(), 3);
        let tail = &metrics.samples()[2];
        assert_eq!(tail.cycles, 5, "partial tail window");
        assert_eq!(tail.busy, 5);
        let full = &metrics.samples()[0];
        assert_eq!(full.start, Cycle::ZERO);
        assert_eq!((full.cycles, full.busy, full.idle), (10, 10, 0));
        assert!((full.bandwidth_share(0) - 1.0).abs() < 1e-12);
        assert_eq!(full.per_master[0].queue_depth, 2, "gauge sampled at boundary");
        assert_eq!(full.pending_masters, 1);
        assert_eq!(metrics.samples()[1].start, Cycle::new(10));
    }

    #[test]
    fn skip_cycles_matches_per_cycle_accounting() {
        // During a fast-forward skip the stats and ports are frozen, so
        // batched window accounting must emit the exact sample series a
        // per-cycle `end_cycle` loop would.
        let ports = vec![port_with_backlog(0, 3), port_with_backlog(1, 1)];
        let mut stats = BusStats::new(2);
        stats.record_words(MasterId::new(0), 7);

        for (lead_in, delta) in [(0u64, 25u64), (3, 17), (9, 1), (4, 6), (0, 0)] {
            let mut slow = BusMetrics::new(10, 2);
            let mut fast = BusMetrics::new(10, 2);
            // A lead-in of cycle-accurate steps leaves the window
            // partially filled before the skip begins.
            for c in 0..lead_in {
                slow.end_cycle(Cycle::new(c), &stats, &ports);
                fast.end_cycle(Cycle::new(c), &stats, &ports);
            }
            for c in lead_in..lead_in + delta {
                slow.end_cycle(Cycle::new(c), &stats, &ports);
            }
            fast.skip_cycles(Cycle::new(lead_in), delta, &stats, &ports);
            assert_eq!(
                slow.samples(),
                fast.samples(),
                "lead-in {lead_in}, delta {delta}: sample series diverged"
            );
            let end = Cycle::new(lead_in + delta);
            slow.flush(end, &stats, &ports);
            fast.flush(end, &stats, &ports);
            assert_eq!(slow.samples(), fast.samples(), "partial tail diverged");
        }
    }

    #[test]
    fn reset_discards_history_and_rebaselines() {
        let mut metrics = BusMetrics::new(4, 1);
        let ports = vec![port_with_backlog(0, 0)];
        let mut stats = BusStats::new(1);
        for c in 0..6u64 {
            stats.record_cycle();
            metrics.end_cycle(Cycle::new(c), &stats, &ports);
        }
        assert_eq!(metrics.samples().len(), 1);
        // Warm-up over: the kernel zeroes its stats and the registry
        // must re-baseline, not report a negative delta.
        stats = BusStats::new(1);
        metrics.reset(Cycle::new(6));
        for c in 6..10u64 {
            stats.record_cycle();
            stats.record_grant(MasterId::new(0));
            metrics.end_cycle(Cycle::new(c), &stats, &ports);
        }
        assert_eq!(metrics.samples().len(), 1);
        let s = &metrics.samples()[0];
        assert_eq!(s.start, Cycle::new(6));
        assert_eq!(s.grants, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn zero_window_is_rejected() {
        let _ = BusMetrics::new(0, 1);
    }
}
