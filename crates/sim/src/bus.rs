//! The shared-bus transfer engine.

use crate::arbiter::Arbiter;
use crate::config::BusConfig;
use crate::cycle::Cycle;
use crate::fault::{FaultEvent, FaultKind, FaultLayer};
use crate::ids::MasterId;
use crate::master::{Completion, MasterPort, RetryOutcome};
use crate::request::RequestMap;
use crate::slave::Slave;
use crate::stats::BusStats;
use crate::trace::{BusTrace, TraceEvent};

/// Internal transfer state of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// No transfer in flight; arbitration happens this cycle.
    Idle,
    /// A grant was issued but arbitration overhead / slave wait states
    /// are still being paid.
    Stalled { master: MasterId, words: u32, stall_left: u32 },
    /// A burst is transferring, one word per cycle.
    Bursting { master: MasterId, words_left: u32 },
}

/// The shared bus: a single channel transferring one word per cycle,
/// with burst-mode grants decided by a pluggable [`Arbiter`].
///
/// `Bus` is driven by [`crate::System`]; it is exposed so that custom
/// drivers (like the ATM switch crate) can inspect its configuration.
///
/// A bus may optionally carry a fault layer (see [`crate::fault`]):
/// injected faults are drawn at arbitration time, so a whole tenure
/// either proceeds or fails atomically. Without a fault layer the
/// fault paths are never entered and the cycle-by-cycle schedule is
/// identical to the pre-fault engine.
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    state: State,
    pub(crate) faults: Option<FaultLayer>,
    /// Reusable per-arbitration request map: rebuilt in place each idle
    /// cycle instead of re-zeroing a fresh map (see
    /// [`RequestMap::reset_for`]).
    request_scratch: RequestMap,
}

impl Bus {
    /// Creates an idle bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        Bus { config, state: State::Idle, faults: None, request_scratch: RequestMap::new(1) }
    }

    /// Creates an idle bus carrying fault-injection machinery.
    pub(crate) fn with_faults(config: BusConfig, faults: FaultLayer) -> Self {
        Bus {
            config,
            state: State::Idle,
            faults: Some(faults),
            request_scratch: RequestMap::new(1),
        }
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Whether a burst (or its setup stall) is currently in flight.
    #[inline]
    pub fn is_busy(&self) -> bool {
        self.state != State::Idle
    }

    /// The recorded fault trace, empty when no fault layer is attached.
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], |layer| layer.log.events())
    }

    /// Master currently owning a tenure (transferring or paying its
    /// setup stall), if any.
    #[inline]
    fn tenure_owner(&self) -> Option<MasterId> {
        match self.state {
            State::Stalled { master, .. } | State::Bursting { master, .. } => Some(master),
            State::Idle => None,
        }
    }

    /// Per-cycle fault machinery that runs regardless of transfer
    /// state: injected master stalls and the watchdog timeout. The
    /// master owning the current tenure is exempt — it is making
    /// progress by definition.
    fn fault_prepass(&mut self, masters: &mut [MasterPort], now: Cycle, stats: &mut BusStats) {
        let owner = self.tenure_owner();
        let Some(layer) = self.faults.as_mut() else {
            return;
        };
        for port in masters.iter_mut() {
            if owner == Some(port.id()) {
                continue;
            }
            if let Some(plan) = layer.plan {
                if port.is_requesting() && !port.is_stalled_at(now) {
                    if let Some(len) = plan.master_stall_at(now, port.id()) {
                        let until = now + u64::from(len);
                        port.set_stall(until);
                        layer.log.record(FaultEvent {
                            cycle: now,
                            kind: FaultKind::MasterStalled { master: port.id(), until },
                        });
                    }
                }
            }
            if let Some(timeout) = layer.timeout {
                if let Some(waited) = port.head_wait(now).filter(|&w| w >= timeout) {
                    port.abort_head();
                    stats.record_timeout(port.id());
                    layer.log.record(FaultEvent {
                        cycle: now,
                        kind: FaultKind::Timeout { master: port.id(), waited },
                    });
                    layer.step_aborts.push(port.id());
                }
            }
        }
    }

    /// Simulates one bus cycle.
    ///
    /// When idle, the request map is built from the master ports and the
    /// arbiter is consulted; a granted burst then occupies subsequent
    /// cycles at one word per cycle. Arbitration is pipelined: the first
    /// word of a zero-overhead grant transfers in the grant cycle itself.
    ///
    /// `blocked` is a bitmask of master indices whose request lines are
    /// suppressed this cycle (used by multi-channel systems to apply
    /// back-pressure from full bridges). Returns the transaction that
    /// completed this cycle, if any — at most one, since the bus moves
    /// one word per cycle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<A: Arbiter + ?Sized>(
        &mut self,
        arbiter: &mut A,
        masters: &mut [MasterPort],
        slaves: &[Slave],
        now: Cycle,
        blocked: u32,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> Option<(MasterId, Completion)> {
        if let Some(layer) = self.faults.as_mut() {
            layer.step_aborts.clear();
            self.fault_prepass(masters, now, stats);
        }
        match self.state {
            State::Stalled { master, words, stall_left } => {
                stats.record_stall(1);
                self.state = if stall_left <= 1 {
                    State::Bursting { master, words_left: words }
                } else {
                    State::Stalled { master, words, stall_left: stall_left - 1 }
                };
                None
            }
            State::Bursting { master, words_left } => {
                let done = self.transfer_word(master, masters, now, stats, trace);
                self.state = if words_left <= 1 {
                    State::Idle
                } else {
                    State::Bursting { master, words_left: words_left - 1 }
                };
                done
            }
            State::Idle => {
                let fault_aware = self.faults.is_some();
                self.request_scratch.reset_for(masters.len());
                for port in masters.iter() {
                    // Without a fault layer no stall or backoff is ever
                    // set, so the plain request line keeps the legacy
                    // schedule bit-exact.
                    let requesting =
                        if fault_aware { port.is_requesting_at(now) } else { port.is_requesting() };
                    if requesting && (blocked >> port.id().index()) & 1 == 0 {
                        self.request_scratch.set_pending(port.id(), port.pending_words());
                    }
                }
                if self.request_scratch.pending_count() >= 2 {
                    stats.record_contended_arbitration();
                }
                match arbiter.arbitrate(&self.request_scratch, now) {
                    Some(grant) => {
                        let pending_bits = self.request_scratch.bits();
                        assert!(
                            (pending_bits >> grant.master.index()) & 1 == 1,
                            "arbiter `{}` granted idle master {}",
                            arbiter.name(),
                            grant.master
                        );
                        assert!(grant.max_words > 0, "arbiter granted zero words");
                        let winner = self.deliver_grant(
                            grant.master,
                            pending_bits,
                            masters,
                            now,
                            stats,
                            trace,
                        )?;
                        let port = &mut masters[winner.index()];
                        let words =
                            grant.max_words.min(self.config.max_burst).min(port.pending_words());
                        stats.record_grant(winner);
                        port.note_grant(now);
                        trace.record(TraceEvent::Grant { cycle: now, master: winner, words });
                        let slave = port.head_slave().expect("pending master has head");
                        if self.slave_fault(winner, slave, masters, now, stats, trace) {
                            return None;
                        }
                        let wait_states = slaves
                            .iter()
                            .find(|s| s.id() == slave)
                            .map_or(self.config.slave_wait_states, Slave::wait_states);
                        let stall = self.config.grant_stall(wait_states);
                        if stall > 0 {
                            stats.record_stall(1);
                            self.state = if stall == 1 {
                                State::Bursting { master: winner, words_left: words }
                            } else {
                                State::Stalled { master: winner, words, stall_left: stall - 1 }
                            };
                            None
                        } else {
                            let done = self.transfer_word(winner, masters, now, stats, trace);
                            self.state = if words == 1 {
                                State::Idle
                            } else {
                                State::Bursting { master: winner, words_left: words - 1 }
                            };
                            done
                        }
                    }
                    None => {
                        trace.record(TraceEvent::Idle { cycle: now });
                        None
                    }
                }
            }
        }
    }

    /// Fast-forwards through the interior of the tenure in flight,
    /// batching up to `max_cycles` of its remaining stall and burst
    /// cycles into arithmetic updates — the TLM kernel's sibling of the
    /// fast kernel's idle skip. Returns how many cycles were consumed,
    /// leaving the bus, master port, statistics, and trace in exactly
    /// the state the per-cycle [`Bus::step`] loop would have reached.
    ///
    /// The arbiter is never consulted here, mirroring the cycle kernel:
    /// `step` does not arbitrate during `Stalled`/`Bursting` cycles
    /// either. The batch replays what those arms do per cycle — stall
    /// cycles count into [`BusStats::record_stall`] without trace
    /// events, word cycles count words and emit per-cycle
    /// [`TraceEvent::Word`] events, and a transaction completing on the
    /// batch's final word is recorded with its exact finish cycle.
    ///
    /// Must not be called with a fault layer attached: `step`'s
    /// per-cycle fault prepass (master-stall draws, watchdog arming on
    /// *waiting* masters) cannot be replicated arithmetically.
    pub(crate) fn skip_tenure(
        &mut self,
        masters: &mut [MasterPort],
        now: Cycle,
        max_cycles: u64,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> u64 {
        debug_assert!(self.faults.is_none(), "tenure skipping requires a fault-free bus");
        let mut consumed = 0u64;
        if let State::Stalled { master, words, stall_left } = self.state {
            let pay = u64::from(stall_left).min(max_cycles) as u32;
            if pay > 0 {
                stats.record_stall(pay);
                consumed += u64::from(pay);
                self.state = if pay == stall_left {
                    State::Bursting { master, words_left: words }
                } else {
                    State::Stalled { master, words, stall_left: stall_left - pay }
                };
            }
        }
        if let State::Bursting { master, words_left } = self.state {
            let burst = u64::from(words_left).min(max_cycles - consumed) as u32;
            if burst > 0 {
                let start = now + consumed;
                stats.record_words(master, burst);
                trace.record_word_span(start, burst, master);
                // A tenure never covers more words than its head
                // transaction has left (the grant clamps to
                // `pending_words`), so at most one completion can
                // occur, on the batch's final word.
                let last = start + (u64::from(burst) - 1);
                if let Some(done) = masters[master.index()].transfer(burst, last) {
                    stats.record_completion(master, &done);
                }
                consumed += u64::from(burst);
                self.state = if burst == words_left {
                    State::Idle
                } else {
                    State::Bursting { master, words_left: words_left - burst }
                };
            }
        }
        consumed
    }

    /// Applies grant-path faults: the grant may be dropped outright or
    /// delivered to the wrong (pending) master. Returns the master that
    /// actually receives the bus, or `None` if the grant was lost (the
    /// cycle is wasted and counted as a stall).
    fn deliver_grant(
        &mut self,
        chosen: MasterId,
        pending_bits: u32,
        masters: &[MasterPort],
        now: Cycle,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> Option<MasterId> {
        let Some(layer) = self.faults.as_mut() else {
            return Some(chosen);
        };
        let Some(plan) = layer.plan else {
            return Some(chosen);
        };
        let mut drop_grant = plan.grant_dropped_at(now, chosen);
        if !drop_grant {
            if let Some(raw) = plan.grant_corrupted_at(now, chosen) {
                let to = MasterId::new((raw % masters.len() as u64) as usize);
                if to != chosen && (pending_bits >> to.index()) & 1 == 1 {
                    layer.log.record(FaultEvent {
                        cycle: now,
                        kind: FaultKind::GrantCorrupted { from: chosen, to },
                    });
                    stats.record_corrupted_grant();
                    trace.record(TraceEvent::Fault { cycle: now, master: chosen });
                    return Some(to);
                }
                // No distinct pending master to misdeliver to: the
                // corrupted grant reaches nobody and acts as a drop.
                drop_grant = true;
            }
        }
        if drop_grant {
            layer.log.record(FaultEvent {
                cycle: now,
                kind: FaultKind::GrantDropped { master: chosen },
            });
            stats.record_dropped_grant();
            stats.record_stall(1);
            trace.record(TraceEvent::Fault { cycle: now, master: chosen });
            return None;
        }
        Some(chosen)
    }

    /// Applies slave-side faults to a freshly granted tenure: if the
    /// addressed slave errors (or is in an outage block), the tenure is
    /// forfeited, the master's retry policy is applied, and the cycle
    /// is counted as a stall. Returns whether a fault fired.
    fn slave_fault(
        &mut self,
        winner: MasterId,
        slave: crate::ids::SlaveId,
        masters: &mut [MasterPort],
        now: Cycle,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> bool {
        let Some(layer) = self.faults.as_mut() else {
            return false;
        };
        let Some(plan) = layer.plan else {
            return false;
        };
        let outage = plan.slave_out_at(now, slave);
        if !outage && !plan.slave_error_at(now, slave) {
            return false;
        }
        let kind = if outage {
            FaultKind::SlaveOutage { master: winner, slave }
        } else {
            FaultKind::SlaveError { master: winner, slave }
        };
        layer.log.record(FaultEvent { cycle: now, kind });
        stats.record_slave_error(winner);
        trace.record(TraceEvent::Fault { cycle: now, master: winner });
        let retry = layer.retry;
        match masters[winner.index()].fail_attempt(now, &retry) {
            RetryOutcome::Retry { attempt, resume_at } => {
                stats.record_retry(winner);
                layer.log.record(FaultEvent {
                    cycle: now,
                    kind: FaultKind::Retry { master: winner, attempt, resume_at },
                });
            }
            RetryOutcome::Aborted { attempts } => {
                stats.record_abort(winner);
                layer.log.record(FaultEvent {
                    cycle: now,
                    kind: FaultKind::Aborted { master: winner, attempts },
                });
                layer.step_aborts.push(winner);
            }
        }
        stats.record_stall(1);
        true
    }

    #[inline]
    fn transfer_word(
        &self,
        master: MasterId,
        masters: &mut [MasterPort],
        now: Cycle,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> Option<(MasterId, Completion)> {
        stats.record_words(master, 1);
        trace.record(TraceEvent::Word { cycle: now, master });
        let done = masters[master.index()].transfer(1, now)?;
        stats.record_completion(master, &done);
        Some((master, done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FixedOrderArbiter;
    use crate::fault::{FaultConfig, FaultPlan, RetryPolicy};
    use crate::ids::SlaveId;
    use crate::request::Transaction;

    fn setup(masters: usize) -> (Bus, Vec<MasterPort>, BusStats, BusTrace) {
        let bus = Bus::new(BusConfig::default());
        let ports =
            (0..masters).map(|i| MasterPort::new(MasterId::new(i), format!("m{i}"))).collect();
        (bus, ports, BusStats::new(masters), BusTrace::enabled(1024))
    }

    #[test]
    fn single_burst_transfers_back_to_back() {
        let (mut bus, mut ports, mut stats, mut trace) = setup(1);
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 3, Cycle::ZERO));
        for c in 0..4 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.master(MasterId::new(0)).words, 3);
        assert_eq!(stats.master(MasterId::new(0)).transactions, 1);
        // 3 words in cycles 0..3 (pipelined arbitration), idle cycle 3.
        assert_eq!(trace.render_owners(0..4), "000.");
        assert_eq!(stats.master(MasterId::new(0)).cycles_per_word(), Some(1.0));
    }

    #[test]
    fn burst_cap_forces_rearbitration() {
        let cfg = BusConfig { max_burst: 2, ..BusConfig::default() };
        let mut bus = Bus::new(cfg);
        let mut ports =
            vec![MasterPort::new(MasterId::new(0), "a"), MasterPort::new(MasterId::new(1), "b")];
        let mut stats = BusStats::new(2);
        let mut trace = BusTrace::enabled(64);
        let mut arb = FixedOrderArbiter::new(2);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 4, Cycle::ZERO));
        ports[1].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
        for c in 0..8 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        // Master 0 (higher priority in fixed order) transfers in two
        // 2-word bursts, then master 1 gets the bus.
        assert_eq!(trace.render_owners(0..6), "000011");
        assert_eq!(stats.grants, 3);
    }

    #[test]
    fn arbitration_overhead_inserts_stalls() {
        let cfg = BusConfig { arbitration_overhead: 2, ..BusConfig::default() };
        let mut bus = Bus::new(cfg);
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::enabled(64);
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
        for c in 0..5 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.stall_cycles, 2);
        assert_eq!(stats.master(MasterId::new(0)).words, 2);
        // Words move in cycles 2 and 3.
        assert_eq!(trace.render_owners(0..5), "  00.");
    }

    #[test]
    fn slave_wait_states_apply_per_burst() {
        let mut bus = Bus::new(BusConfig::default());
        let slaves = vec![Slave::with_wait_states(SlaveId::new(0), "slow", 1)];
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::disabled();
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
        for c in 0..4 {
            bus.step(&mut arb, &mut ports, &slaves, Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.stall_cycles, 1);
        assert_eq!(stats.master(MasterId::new(0)).words, 2);
    }

    #[test]
    fn idle_bus_records_idle_events() {
        let (mut bus, mut ports, mut stats, mut trace) = setup(1);
        let mut arb = FixedOrderArbiter::new(1);
        bus.step(&mut arb, &mut ports, &[], Cycle::ZERO, 0, &mut stats, &mut trace);
        assert_eq!(trace.render_owners(0..1), ".");
        assert!(!bus.is_busy());
    }

    #[test]
    fn skip_tenure_matches_stepped_interior() {
        // Arbitration overhead 2 + slave wait 1 → 3 stall cycles, then a
        // 5-word burst. Step the grant cycle, then batch the rest and
        // compare against the fully stepped reference.
        let cfg = BusConfig { arbitration_overhead: 2, ..BusConfig::default() };
        let slaves = vec![Slave::with_wait_states(SlaveId::new(0), "slow", 1)];
        let run = |skip: bool| {
            let mut bus = Bus::new(cfg);
            let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
            let mut stats = BusStats::new(1);
            let mut trace = BusTrace::enabled(64);
            let mut arb = FixedOrderArbiter::new(1);
            ports[0].enqueue(Transaction::new(SlaveId::new(0), 5, Cycle::ZERO));
            bus.step(&mut arb, &mut ports, &slaves, Cycle::ZERO, 0, &mut stats, &mut trace);
            stats.record_cycle();
            let mut c = 1u64;
            if skip {
                let consumed =
                    bus.skip_tenure(&mut ports, Cycle::new(c), u64::MAX, &mut stats, &mut trace);
                assert_eq!(consumed, 7, "2 remaining stalls + 5 words");
                stats.record_cycles(consumed);
                c += consumed;
            }
            while c < 10 {
                bus.step(&mut arb, &mut ports, &slaves, Cycle::new(c), 0, &mut stats, &mut trace);
                stats.record_cycle();
                c += 1;
            }
            assert!(!bus.is_busy());
            (stats, trace)
        };
        let (stepped_stats, stepped_trace) = run(false);
        let (skipped_stats, skipped_trace) = run(true);
        assert_eq!(stepped_stats, skipped_stats);
        assert_eq!(stepped_trace, skipped_trace);
        assert_eq!(skipped_stats.master(MasterId::new(0)).transactions, 1);
    }

    #[test]
    fn partial_tenure_skips_resume_mid_burst() {
        // A budget smaller than the tenure leaves the bus mid-flight in
        // the exact state the stepped loop reaches.
        let cfg = BusConfig { arbitration_overhead: 3, ..BusConfig::default() };
        let mut bus = Bus::new(cfg);
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::enabled(64);
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 4, Cycle::ZERO));
        bus.step(&mut arb, &mut ports, &[], Cycle::ZERO, 0, &mut stats, &mut trace);
        // 2 remaining stalls + 4 words = 6 interior cycles; pay 1, then 3, then the rest.
        assert_eq!(bus.skip_tenure(&mut ports, Cycle::new(1), 1, &mut stats, &mut trace), 1);
        assert!(bus.is_busy());
        assert_eq!(bus.skip_tenure(&mut ports, Cycle::new(2), 3, &mut stats, &mut trace), 3);
        assert!(bus.is_busy(), "two burst words remain");
        assert_eq!(bus.skip_tenure(&mut ports, Cycle::new(5), u64::MAX, &mut stats, &mut trace), 2);
        assert!(!bus.is_busy());
        assert_eq!(stats.stall_cycles, 3);
        assert_eq!(stats.master(MasterId::new(0)).words, 4);
        assert_eq!(stats.master(MasterId::new(0)).transactions, 1);
        // Words moved in cycles 3..7 (grant 0, stalls 0..3 inclusive of
        // the grant cycle's recorded stall).
        assert_eq!(trace.render_owners(0..7), "   0000");
    }

    fn run_with_faults(layer: FaultLayer, cycles: u64, words: u32) -> (Bus, BusStats, BusTrace) {
        let mut bus = Bus::with_faults(BusConfig::default(), layer);
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::enabled(4096);
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), words, Cycle::ZERO));
        for c in 0..cycles {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        (bus, stats, trace)
    }

    #[test]
    fn certain_slave_error_exhausts_retries_and_aborts() {
        let cfg = FaultConfig { seed: 1, slave_error_rate: 1.0, ..FaultConfig::default() };
        let layer =
            FaultLayer::new(Some(FaultPlan::new(cfg)), RetryPolicy::exponential(1, 1), None);
        let (bus, stats, _) = run_with_faults(layer, 50, 4);
        let m = stats.master(MasterId::new(0));
        assert_eq!(m.slave_errors, 2, "first attempt + one retry");
        assert_eq!(m.retries, 1);
        assert_eq!(m.aborted, 1);
        assert_eq!(m.transactions, 0);
        assert_eq!(m.words, 0);
        // Fault trace: error, retry, error, abort.
        let kinds: Vec<_> = bus.fault_events().iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], FaultKind::SlaveError { .. }));
        assert!(matches!(kinds[1], FaultKind::Retry { attempt: 1, .. }));
        assert!(matches!(kinds[2], FaultKind::SlaveError { .. }));
        assert!(matches!(kinds[3], FaultKind::Aborted { attempts: 2, .. }));
    }

    #[test]
    fn certain_grant_drop_starves_the_bus() {
        let cfg = FaultConfig { seed: 2, grant_drop_rate: 1.0, ..FaultConfig::default() };
        let layer = FaultLayer::new(Some(FaultPlan::new(cfg)), RetryPolicy::none(), None);
        let (bus, stats, trace) = run_with_faults(layer, 20, 2);
        assert_eq!(stats.master(MasterId::new(0)).words, 0);
        assert_eq!(stats.dropped_grants, 20);
        assert_eq!(stats.grants, 0, "dropped grants never reach the master");
        assert_eq!(bus.fault_events().len(), 20);
        assert_eq!(trace.render_owners(0..4), "xxxx");
    }

    #[test]
    fn watchdog_aborts_wedged_transaction() {
        /// An arbiter that never grants — a wedged primary.
        struct Wedged;
        impl Arbiter for Wedged {
            fn arbitrate(&mut self, _: &RequestMap, _: Cycle) -> Option<crate::arbiter::Grant> {
                None
            }
            fn name(&self) -> &str {
                "wedged"
            }
        }
        let layer = FaultLayer::new(None, RetryPolicy::none(), Some(10));
        let mut bus = Bus::with_faults(BusConfig::default(), layer);
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::disabled();
        let mut arb = Wedged;
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 4, Cycle::ZERO));
        for c in 0..20 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.aborted_transactions, 1);
        assert!(!ports[0].is_requesting(), "wedged transaction was flushed");
        assert!(matches!(bus.fault_events()[0].kind, FaultKind::Timeout { waited: 10, .. }));
    }

    #[test]
    fn inert_fault_layer_matches_plain_run() {
        let run = |faults: Option<FaultLayer>| {
            let mut bus = match faults {
                Some(layer) => Bus::with_faults(BusConfig::default(), layer),
                None => Bus::new(BusConfig::default()),
            };
            let mut ports = vec![
                MasterPort::new(MasterId::new(0), "a"),
                MasterPort::new(MasterId::new(1), "b"),
            ];
            let mut stats = BusStats::new(2);
            let mut trace = BusTrace::enabled(256);
            let mut arb = FixedOrderArbiter::new(2);
            for c in 0..64u64 {
                if c % 7 == 0 {
                    ports[0].enqueue(Transaction::new(SlaveId::new(0), 3, Cycle::new(c)));
                }
                if c % 11 == 0 {
                    ports[1].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::new(c)));
                }
                bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
                stats.record_cycle();
            }
            (stats, trace)
        };
        // A fault layer with all-zero rates and no watchdog must be inert.
        let inert = FaultLayer::new(
            Some(FaultPlan::new(FaultConfig::with_seed(42))),
            RetryPolicy::exponential(3, 2),
            None,
        );
        let (plain_stats, plain_trace) = run(None);
        let (fault_stats, fault_trace) = run(Some(inert));
        assert_eq!(plain_stats, fault_stats);
        assert_eq!(plain_trace, fault_trace);
    }
}
