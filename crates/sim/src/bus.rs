//! The shared-bus transfer engine.

use crate::arbiter::Arbiter;
use crate::config::BusConfig;
use crate::cycle::Cycle;
use crate::ids::MasterId;
use crate::master::{Completion, MasterPort};
use crate::request::RequestMap;
use crate::slave::Slave;
use crate::stats::BusStats;
use crate::trace::{BusTrace, TraceEvent};

/// Internal transfer state of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// No transfer in flight; arbitration happens this cycle.
    Idle,
    /// A grant was issued but arbitration overhead / slave wait states
    /// are still being paid.
    Stalled { master: MasterId, words: u32, stall_left: u32 },
    /// A burst is transferring, one word per cycle.
    Bursting { master: MasterId, words_left: u32 },
}

/// The shared bus: a single channel transferring one word per cycle,
/// with burst-mode grants decided by a pluggable [`Arbiter`].
///
/// `Bus` is driven by [`crate::System`]; it is exposed so that custom
/// drivers (like the ATM switch crate) can inspect its configuration.
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    state: State,
}

impl Bus {
    /// Creates an idle bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        Bus { config, state: State::Idle }
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Whether a burst (or its setup stall) is currently in flight.
    pub fn is_busy(&self) -> bool {
        self.state != State::Idle
    }

    /// Simulates one bus cycle.
    ///
    /// When idle, the request map is built from the master ports and the
    /// arbiter is consulted; a granted burst then occupies subsequent
    /// cycles at one word per cycle. Arbitration is pipelined: the first
    /// word of a zero-overhead grant transfers in the grant cycle itself.
    ///
    /// `blocked` is a bitmask of master indices whose request lines are
    /// suppressed this cycle (used by multi-channel systems to apply
    /// back-pressure from full bridges). Returns the transaction that
    /// completed this cycle, if any — at most one, since the bus moves
    /// one word per cycle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step(
        &mut self,
        arbiter: &mut dyn Arbiter,
        masters: &mut [MasterPort],
        slaves: &[Slave],
        now: Cycle,
        blocked: u32,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> Option<(MasterId, Completion)> {
        match self.state {
            State::Stalled { master, words, stall_left } => {
                stats.record_stall(1);
                self.state = if stall_left <= 1 {
                    State::Bursting { master, words_left: words }
                } else {
                    State::Stalled { master, words, stall_left: stall_left - 1 }
                };
                None
            }
            State::Bursting { master, words_left } => {
                let done = self.transfer_word(master, masters, now, stats, trace);
                self.state = if words_left <= 1 {
                    State::Idle
                } else {
                    State::Bursting { master, words_left: words_left - 1 }
                };
                done
            }
            State::Idle => {
                let mut map = RequestMap::new(masters.len());
                for port in masters.iter() {
                    if port.is_requesting() && (blocked >> port.id().index()) & 1 == 0 {
                        map.set_pending(port.id(), port.pending_words());
                    }
                }
                match arbiter.arbitrate(&map, now) {
                    Some(grant) => {
                        assert!(
                            map.is_pending(grant.master),
                            "arbiter `{}` granted idle master {}",
                            arbiter.name(),
                            grant.master
                        );
                        assert!(grant.max_words > 0, "arbiter granted zero words");
                        let port = &mut masters[grant.master.index()];
                        let words = grant
                            .max_words
                            .min(self.config.max_burst)
                            .min(port.pending_words());
                        stats.record_grant(grant.master);
                        port.note_grant(now);
                        trace.record(TraceEvent::Grant {
                            cycle: now,
                            master: grant.master,
                            words,
                        });
                        let slave = port.head_slave().expect("pending master has head");
                        let wait_states = slaves
                            .iter()
                            .find(|s| s.id() == slave)
                            .map_or(self.config.slave_wait_states, Slave::wait_states);
                        let stall = self.config.arbitration_overhead + wait_states;
                        if stall > 0 {
                            stats.record_stall(1);
                            self.state = if stall == 1 {
                                State::Bursting { master: grant.master, words_left: words }
                            } else {
                                State::Stalled {
                                    master: grant.master,
                                    words,
                                    stall_left: stall - 1,
                                }
                            };
                            None
                        } else {
                            let done =
                                self.transfer_word(grant.master, masters, now, stats, trace);
                            self.state = if words == 1 {
                                State::Idle
                            } else {
                                State::Bursting { master: grant.master, words_left: words - 1 }
                            };
                            done
                        }
                    }
                    None => {
                        trace.record(TraceEvent::Idle { cycle: now });
                        None
                    }
                }
            }
        }
    }

    fn transfer_word(
        &self,
        master: MasterId,
        masters: &mut [MasterPort],
        now: Cycle,
        stats: &mut BusStats,
        trace: &mut BusTrace,
    ) -> Option<(MasterId, Completion)> {
        stats.record_words(master, 1);
        trace.record(TraceEvent::Word { cycle: now, master });
        let done = masters[master.index()].transfer(1, now)?;
        stats.record_completion(master, &done);
        Some((master, done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FixedOrderArbiter;
    use crate::ids::SlaveId;
    use crate::request::Transaction;

    fn setup(masters: usize) -> (Bus, Vec<MasterPort>, BusStats, BusTrace) {
        let bus = Bus::new(BusConfig::default());
        let ports = (0..masters)
            .map(|i| MasterPort::new(MasterId::new(i), format!("m{i}")))
            .collect();
        (bus, ports, BusStats::new(masters), BusTrace::enabled(1024))
    }

    #[test]
    fn single_burst_transfers_back_to_back() {
        let (mut bus, mut ports, mut stats, mut trace) = setup(1);
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 3, Cycle::ZERO));
        for c in 0..4 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.master(MasterId::new(0)).words, 3);
        assert_eq!(stats.master(MasterId::new(0)).transactions, 1);
        // 3 words in cycles 0..3 (pipelined arbitration), idle cycle 3.
        assert_eq!(trace.render_owners(0..4), "000.");
        assert_eq!(stats.master(MasterId::new(0)).cycles_per_word(), Some(1.0));
    }

    #[test]
    fn burst_cap_forces_rearbitration() {
        let cfg = BusConfig { max_burst: 2, ..BusConfig::default() };
        let mut bus = Bus::new(cfg);
        let mut ports = vec![
            MasterPort::new(MasterId::new(0), "a"),
            MasterPort::new(MasterId::new(1), "b"),
        ];
        let mut stats = BusStats::new(2);
        let mut trace = BusTrace::enabled(64);
        let mut arb = FixedOrderArbiter::new(2);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 4, Cycle::ZERO));
        ports[1].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
        for c in 0..8 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        // Master 0 (higher priority in fixed order) transfers in two
        // 2-word bursts, then master 1 gets the bus.
        assert_eq!(trace.render_owners(0..6), "000011");
        assert_eq!(stats.grants, 3);
    }

    #[test]
    fn arbitration_overhead_inserts_stalls() {
        let cfg = BusConfig { arbitration_overhead: 2, ..BusConfig::default() };
        let mut bus = Bus::new(cfg);
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::enabled(64);
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
        for c in 0..5 {
            bus.step(&mut arb, &mut ports, &[], Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.stall_cycles, 2);
        assert_eq!(stats.master(MasterId::new(0)).words, 2);
        // Words move in cycles 2 and 3.
        assert_eq!(trace.render_owners(0..5), "  00.");
    }

    #[test]
    fn slave_wait_states_apply_per_burst() {
        let mut bus = Bus::new(BusConfig::default());
        let slaves = vec![Slave::with_wait_states(SlaveId::new(0), "slow", 1)];
        let mut ports = vec![MasterPort::new(MasterId::new(0), "a")];
        let mut stats = BusStats::new(1);
        let mut trace = BusTrace::disabled();
        let mut arb = FixedOrderArbiter::new(1);
        ports[0].enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
        for c in 0..4 {
            bus.step(&mut arb, &mut ports, &slaves, Cycle::new(c), 0, &mut stats, &mut trace);
            stats.record_cycle();
        }
        assert_eq!(stats.stall_cycles, 1);
        assert_eq!(stats.master(MasterId::new(0)).words, 2);
    }

    #[test]
    fn idle_bus_records_idle_events() {
        let (mut bus, mut ports, mut stats, mut trace) = setup(1);
        let mut arb = FixedOrderArbiter::new(1);
        bus.step(&mut arb, &mut ports, &[], Cycle::ZERO, 0, &mut stats, &mut trace);
        assert_eq!(trace.render_owners(0..1), ".");
        assert!(!bus.is_busy());
    }
}
