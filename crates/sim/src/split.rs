//! Split (multithreaded) transactions: the bus is released while a
//! slow slave processes, and the response re-arbitrates later.
//!
//! The paper notes that every architecture it considers "can be
//! implemented with additional features such as pre-emption,
//! multithreaded transactions, and dynamic bus splitting" (§2.3). This
//! module provides the multithreaded-transaction variant: instead of
//! stalling the bus for a slow slave's wait states, a master's access
//! becomes two bus tenures —
//!
//! 1. a one-word **request phase**, after which the bus is free while
//!    the slave processes for its response latency;
//! 2. a **response phase** in which the slave's responder port contends
//!    for the bus like a master and delivers the data words.
//!
//! The arbiter therefore serves `masters + split slaves` actors; with a
//! lottery arbiter, tickets for the responder ports set the priority of
//! response traffic. End-to-end latency is measured from the original
//! issue to response delivery.
//!
//! ```
//! use socsim::arbiter::FixedOrderArbiter;
//! use socsim::split::SplitSystemBuilder;
//! use socsim::{BusConfig, Cycle, SlaveId, Transaction, TrafficSource};
//!
//! struct Once(Option<Transaction>);
//! impl TrafficSource for Once {
//!     fn poll(&mut self, _now: Cycle) -> Option<Transaction> { self.0.take() }
//! }
//!
//! # fn main() -> Result<(), socsim::BuildSystemError> {
//! let mut system = SplitSystemBuilder::new(BusConfig::default())
//!     .master("cpu", Box::new(Once(Some(
//!         Transaction::new(SlaveId::new(0), 4, Cycle::ZERO)))))
//!     .split_slave("slow-mem", 10, 1) // 10-cycle access, 1 outstanding
//!     .arbiter(Box::new(FixedOrderArbiter::new(2)))
//!     .build()?;
//! system.run(64);
//! // 1 request word + 10 cycles processing + 4 response words.
//! assert_eq!(system.master_stats(0).transactions, 1);
//! assert!(system.master_stats(0).total_latency >= 15);
//! # Ok(())
//! # }
//! ```

use crate::arbiter::Arbiter;
use crate::bus::Bus;
use crate::config::BusConfig;
use crate::cycle::Cycle;
use crate::error::BuildSystemError;
use crate::fault::{FaultConfig, FaultEvent, RetryPolicy};
use crate::ids::MasterId;
use crate::master::MasterPort;
use crate::request::{Transaction, MAX_MASTERS};
use crate::stats::{BusStats, MasterStats};
use crate::system::TrafficSource;
use crate::trace::BusTrace;
use std::collections::VecDeque;

struct SplitSlave {
    name: String,
    /// Cycles between the end of the request phase and response
    /// readiness.
    latency: u32,
    /// Most requests the slave may have in flight at once.
    capacity: usize,
    /// Actor (port) index of the responder.
    actor: usize,
    /// Originating master of each queued response, FIFO.
    origins: VecDeque<usize>,
    /// Requests accepted but whose response has not finished.
    outstanding: usize,
}

/// A response waiting for the slave's access latency to elapse.
struct PendingResponse {
    ready_at: u64,
    slave: usize,
    txn: Transaction,
    origin: usize,
}

/// Builder for a [`SplitSystem`].
pub struct SplitSystemBuilder {
    config: BusConfig,
    names: Vec<String>,
    sources: Vec<Box<dyn TrafficSource>>,
    slaves: Vec<(String, u32, usize)>,
    arbiter: Option<Box<dyn Arbiter>>,
    faults: Option<FaultConfig>,
    retry: Option<RetryPolicy>,
    timeout: Option<u64>,
}

impl std::fmt::Debug for SplitSystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitSystemBuilder")
            .field("masters", &self.names)
            .field("slaves", &self.slaves.len())
            .finish()
    }
}

impl SplitSystemBuilder {
    /// Starts building a split-transaction system on one bus.
    pub fn new(config: BusConfig) -> Self {
        SplitSystemBuilder {
            config,
            names: Vec::new(),
            sources: Vec::new(),
            slaves: Vec::new(),
            arbiter: None,
            faults: None,
            retry: None,
            timeout: None,
        }
    }

    /// Adds a master driven by `source`.
    pub fn master(mut self, name: impl Into<String>, source: Box<dyn TrafficSource>) -> Self {
        self.names.push(name.into());
        self.sources.push(source);
        self
    }

    /// Adds a split-capable slave with the given access `latency` and
    /// `capacity` concurrently outstanding requests. Slaves receive
    /// dense [`crate::SlaveId`]s in the order added.
    pub fn split_slave(mut self, name: impl Into<String>, latency: u32, capacity: usize) -> Self {
        self.slaves.push((name.into(), latency, capacity.max(1)));
        self
    }

    /// Sets the arbiter. It must be sized for `masters + split slaves`
    /// actors: masters take indices `0..masters` and responder ports
    /// follow in slave order.
    pub fn arbiter(mut self, arbiter: Box<dyn Arbiter>) -> Self {
        self.arbiter = Some(arbiter);
        self
    }

    /// Attaches a seeded fault-injection plan (see [`crate::fault`]).
    /// Faults apply to both request and response phases.
    pub fn faults(mut self, config: FaultConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// Sets the recovery policy applied when an injected slave error
    /// hits a phase. Without a policy the first error aborts.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Arms the transaction watchdog (see
    /// [`crate::SystemBuilder::timeout`]).
    pub fn timeout(mut self, cycles: u64) -> Self {
        self.timeout = Some(cycles);
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no masters or slaves, no arbiter,
    /// the actor count exceeds [`MAX_MASTERS`], or the fault, retry or
    /// timeout configuration is invalid.
    pub fn build(self) -> Result<SplitSystem, BuildSystemError> {
        if self.names.is_empty() {
            return Err(BuildSystemError::NoMasters);
        }
        if self.slaves.is_empty() {
            return Err(BuildSystemError::InvalidConfig(
                "a split system needs at least one split slave".into(),
            ));
        }
        self.config.validate().map_err(BuildSystemError::InvalidConfig)?;
        let fault_layer = crate::fault::build_fault_layer(self.faults, self.retry, self.timeout)?;
        let arbiter = self.arbiter.ok_or(BuildSystemError::NoArbiter)?;
        let actors = self.names.len() + self.slaves.len();
        if actors > MAX_MASTERS {
            return Err(BuildSystemError::TooManyMasters { got: actors, max: MAX_MASTERS });
        }
        let mut ports: Vec<MasterPort> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| MasterPort::new(MasterId::new(i), n.clone()))
            .collect();
        let n_masters = self.names.len();
        let slaves: Vec<SplitSlave> = self
            .slaves
            .into_iter()
            .enumerate()
            .map(|(k, (name, latency, capacity))| {
                let actor = n_masters + k;
                ports.push(MasterPort::new(MasterId::new(actor), format!("resp-{name}")));
                SplitSlave {
                    name,
                    latency,
                    capacity,
                    actor,
                    origins: VecDeque::new(),
                    outstanding: 0,
                }
            })
            .collect();
        Ok(SplitSystem {
            bus: match fault_layer {
                Some(layer) => Bus::with_faults(self.config, layer),
                None => Bus::new(self.config),
            },
            arbiter,
            ports,
            sources: self.sources,
            slaves,
            pending: Vec::new(),
            requests_in_flight: vec![VecDeque::new(); n_masters],
            stats: BusStats::new(actors),
            end_to_end: vec![MasterStats::default(); n_masters],
            trace: BusTrace::disabled(),
            now: Cycle::ZERO,
            n_masters,
        })
    }
}

/// A single-bus system with split-transaction slaves.
pub struct SplitSystem {
    bus: Bus,
    arbiter: Box<dyn Arbiter>,
    /// Master ports `0..n_masters`, then one responder port per slave.
    ports: Vec<MasterPort>,
    sources: Vec<Box<dyn TrafficSource>>,
    slaves: Vec<SplitSlave>,
    pending: Vec<PendingResponse>,
    /// Per master: the original data payloads of issued request phases,
    /// FIFO (the request leg carries only one address word).
    requests_in_flight: Vec<VecDeque<Transaction>>,
    stats: BusStats,
    end_to_end: Vec<MasterStats>,
    trace: BusTrace,
    now: Cycle,
    n_masters: usize,
}

impl std::fmt::Debug for SplitSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitSystem")
            .field("masters", &self.n_masters)
            .field("slaves", &self.slaves.len())
            .field("now", &self.now)
            .finish()
    }
}

impl SplitSystem {
    /// Number of (true) masters.
    pub fn masters(&self) -> usize {
        self.n_masters
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Bus-level statistics: actor indices `0..masters` are the request
    /// phases, the rest the per-slave response phases.
    pub fn bus_stats(&self) -> &BusStats {
        &self.stats
    }

    /// End-to-end statistics for `master`: latency from issue until the
    /// last response word.
    ///
    /// # Panics
    ///
    /// Panics if `master` is out of range.
    pub fn master_stats(&self, master: usize) -> &MasterStats {
        &self.end_to_end[master]
    }

    /// The display name of split slave `slave`.
    ///
    /// # Panics
    ///
    /// Panics if `slave` is out of range.
    pub fn slave_name(&self, slave: usize) -> &str {
        &self.slaves[slave].name
    }

    /// The recorded fault trace (empty unless fault injection was
    /// configured).
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.bus.fault_events()
    }

    /// Simulates one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        // 1. New traffic: each transaction becomes a 1-word request
        //    phase; the payload is remembered for the response.
        for (m, source) in self.sources.iter_mut().enumerate() {
            let backlog = self.ports[m].backlog_transactions();
            if let Some(txn) = source.poll_with_backlog(now, backlog) {
                assert!(
                    txn.slave().index() < self.slaves.len(),
                    "transaction addresses unknown split slave {}",
                    txn.slave()
                );
                self.requests_in_flight[m].push_back(Transaction::new(
                    txn.slave(),
                    txn.words(),
                    txn.issued_at(),
                ));
                self.ports[m].enqueue(Transaction::new(txn.slave(), 1, txn.issued_at()));
            }
        }
        // 2. Responses whose access latency elapsed enter the responder
        //    ports.
        let mut k = 0;
        while k < self.pending.len() {
            if self.pending[k].ready_at <= now.index() {
                let response = self.pending.swap_remove(k);
                let slave = &mut self.slaves[response.slave];
                slave.origins.push_back(response.origin);
                self.ports[slave.actor].enqueue(response.txn);
            } else {
                k += 1;
            }
        }
        // 3. Back-pressure: a master whose head request targets a slave
        //    at capacity is masked out this cycle.
        let mut blocked = 0u32;
        for m in 0..self.n_masters {
            if let Some(slave) = self.ports[m].head_slave() {
                if self.slaves[slave.index()].outstanding >= self.slaves[slave.index()].capacity {
                    blocked |= 1 << m;
                }
            }
        }
        // 4. One bus cycle.
        let completed = self.bus.step(
            &mut *self.arbiter,
            &mut self.ports,
            &[],
            now,
            blocked,
            &mut self.stats,
            &mut self.trace,
        );
        self.stats.record_cycle();
        self.stats.failovers = self.arbiter.failovers();
        // 5. Undo bookkeeping for phases the fault layer abandoned this
        //    cycle (retry exhaustion or watchdog), keeping the payload
        //    and origin FIFOs aligned with the port queues.
        let aborts = self
            .bus
            .faults
            .as_mut()
            .map(|layer| std::mem::take(&mut layer.step_aborts))
            .unwrap_or_default();
        for actor in aborts {
            if actor.index() < self.n_masters {
                self.requests_in_flight[actor.index()]
                    .pop_front()
                    .expect("aborted request phase has a recorded payload");
            } else {
                let slave = &mut self.slaves[actor.index() - self.n_masters];
                slave.outstanding -= 1;
                slave.origins.pop_front().expect("aborted response phase has an origin");
            }
        }
        // 6. Route the completed phase.
        if let Some((actor, completion)) = completed {
            let txn = completion.txn;
            if actor.index() < self.n_masters {
                // Request phase done: the slave starts processing.
                let m = actor.index();
                let original = self.requests_in_flight[m]
                    .pop_front()
                    .expect("request phase has a recorded payload");
                let slave = &mut self.slaves[original.slave().index()];
                slave.outstanding += 1;
                self.pending.push(PendingResponse {
                    // The slave processes for `latency` full cycles after
                    // the request word; the response contends from the
                    // cycle after that.
                    ready_at: now.index() + 1 + u64::from(slave.latency),
                    slave: original.slave().index(),
                    txn: original,
                    origin: m,
                });
            } else {
                // Response phase done: deliver to the originating master.
                let s = actor.index() - self.n_masters;
                let slave = &mut self.slaves[s];
                slave.outstanding -= 1;
                let origin = slave.origins.pop_front().expect("response phase has an origin");
                self.end_to_end[origin].words += u64::from(txn.words());
                self.end_to_end[origin].record_transaction(txn.words(), completion.latency(), 0);
            }
        }
        self.now += 1;
    }

    /// Simulates `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FixedOrderArbiter;
    use crate::ids::SlaveId;
    use crate::slave::Slave;
    use crate::system::SystemBuilder;

    struct Script(VecDeque<Transaction>);
    impl TrafficSource for Script {
        fn poll(&mut self, now: Cycle) -> Option<Transaction> {
            if self.0.front()?.issued_at() <= now {
                self.0.pop_front()
            } else {
                None
            }
        }
    }

    fn script(entries: &[(u64, u32)]) -> Box<dyn TrafficSource> {
        Box::new(Script(
            entries
                .iter()
                .map(|&(cycle, words)| Transaction::new(SlaveId::new(0), words, Cycle::new(cycle)))
                .collect(),
        ))
    }

    #[test]
    fn single_transaction_timing() {
        let mut system = SplitSystemBuilder::new(BusConfig::default())
            .master("cpu", script(&[(0, 4)]))
            .split_slave("mem", 10, 1)
            .arbiter(Box::new(FixedOrderArbiter::new(2)))
            .build()
            .expect("valid");
        system.run(64);
        let stats = system.master_stats(0);
        assert_eq!(stats.transactions, 1);
        // Request word at cycle 0; ready at 10; response words 10..14
        // (the responder enqueues and wins in the same cycle it becomes
        // ready, since nothing else contends): latency = 15.
        assert_eq!(stats.total_latency, 15);
    }

    #[test]
    fn bus_is_free_while_the_slave_processes() {
        // Master A reads from the slow slave; master B streams data to
        // it. With split transactions B proceeds during A's 20-cycle
        // access, so total utilization is high.
        let mut system = SplitSystemBuilder::new(BusConfig::default())
            .master("reader", script(&[(0, 4)]))
            .master("streamer", script(&[(0, 40)]))
            .split_slave("mem", 20, 4)
            .arbiter(Box::new(FixedOrderArbiter::new(3)))
            .build()
            .expect("valid");
        system.run(70);
        // The streamer's 40 words + reader's 1+4+1 words all complete.
        assert_eq!(system.master_stats(0).transactions, 1);
        assert_eq!(system.master_stats(1).transactions, 1);
        // During the reader's 20 processing cycles the streamer moved
        // data: busy cycles far exceed what a blocking bus would allow
        // in the same window.
        assert!(system.bus_stats().busy_cycles >= 46);
    }

    #[test]
    fn split_beats_blocking_wait_states_on_throughput() {
        // Same workload on (a) a blocking bus whose slave inserts 12
        // wait states per burst, and (b) a split bus with 12-cycle
        // access latency. The split bus finishes the combined workload
        // sooner because the second master fills the gaps.
        let window = 400u64;
        let entries: Vec<(u64, u32)> = (0..8).map(|k| (k * 40, 8u32)).collect();

        let mut blocking = SystemBuilder::new(BusConfig::default())
            .master("a", script(&entries))
            .master("b", script(&entries))
            .slave(Slave::with_wait_states(SlaveId::new(0), "mem", 12))
            .arbiter(FixedOrderArbiter::new(2))
            .build()
            .expect("valid");
        blocking.run(window);
        let blocking_words: u64 =
            (0..2).map(|i| blocking.stats().master(MasterId::new(i)).words).sum();

        let mut split = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&entries))
            .master("b", script(&entries))
            .split_slave("mem", 12, 8)
            .arbiter(Box::new(FixedOrderArbiter::new(3)))
            .build()
            .expect("valid");
        split.run(window);
        let split_words: u64 = (0..2).map(|i| split.master_stats(i).completed_words).sum();

        assert!(split_words >= blocking_words, "split {split_words} vs blocking {blocking_words}");
    }

    #[test]
    fn capacity_one_serializes_slave_access() {
        // Two masters hit a capacity-1 slave at once: the second request
        // phase must wait until the first response completes.
        let mut system = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&[(0, 4)]))
            .master("b", script(&[(0, 4)]))
            .split_slave("mem", 10, 1)
            .arbiter(Box::new(FixedOrderArbiter::new(3)))
            .build()
            .expect("valid");
        system.run(100);
        let a = system.master_stats(0).total_latency;
        let b = system.master_stats(1).total_latency;
        assert_eq!(a, 15);
        // b's request may only start after a's response finished.
        assert!(b >= 30, "b latency {b}");
    }

    #[test]
    fn build_validation() {
        let err = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&[]))
            .arbiter(Box::new(FixedOrderArbiter::new(1)))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildSystemError::InvalidConfig(_)));

        let err = SplitSystemBuilder::new(BusConfig::default())
            .split_slave("mem", 1, 1)
            .arbiter(Box::new(FixedOrderArbiter::new(1)))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildSystemError::NoMasters);

        let err = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&[]))
            .split_slave("mem", 1, 1)
            .arbiter(Box::new(FixedOrderArbiter::new(2)))
            .faults(FaultConfig { slave_error_rate: 2.0, ..FaultConfig::default() })
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildSystemError::InvalidFaultConfig(_)));

        let err = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&[]))
            .split_slave("mem", 1, 1)
            .arbiter(Box::new(FixedOrderArbiter::new(2)))
            .timeout(0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildSystemError::InvalidTimeout(0));
    }

    #[test]
    fn fault_aborts_keep_split_bookkeeping_consistent() {
        // Certain slave errors with no retry policy: every request
        // phase aborts at its first grant. The payload FIFO must stay
        // aligned with the port queues (no bookkeeping panics) and no
        // transaction completes end to end.
        let mut system = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&[(0, 4), (10, 4), (20, 4)]))
            .split_slave("mem", 5, 2)
            .arbiter(Box::new(FixedOrderArbiter::new(2)))
            .faults(FaultConfig { seed: 3, slave_error_rate: 1.0, ..FaultConfig::default() })
            .build()
            .expect("valid");
        system.run(200);
        assert_eq!(system.master_stats(0).transactions, 0);
        assert_eq!(system.bus_stats().aborted_transactions, 3);
        assert_eq!(system.bus_stats().slave_errors, 3);
        assert!(!system.fault_events().is_empty());
    }

    #[test]
    fn retry_exhaustion_runs_its_full_backoff_schedule_on_a_split_bus() {
        // Certain slave errors WITH a retry budget: every request
        // phase must walk the whole ladder — initial attempt plus
        // `max_retries` backoffs — before aborting, and the split
        // payload FIFO must survive the repeated re-grants.
        let mut system = SplitSystemBuilder::new(BusConfig::default())
            .master("a", script(&[(0, 4), (50, 4)]))
            .master("b", script(&[(0, 2)]))
            .split_slave("mem", 5, 2)
            .arbiter(Box::new(FixedOrderArbiter::new(3)))
            .faults(FaultConfig { seed: 3, slave_error_rate: 1.0, ..FaultConfig::default() })
            .retry_policy(RetryPolicy { max_retries: 2, backoff_base: 4, backoff_factor: 2 })
            .build()
            .expect("valid");
        system.run(400);
        let stats = system.bus_stats();
        assert_eq!(system.master_stats(0).transactions, 0, "nothing completes");
        assert_eq!(system.master_stats(1).transactions, 0, "nothing completes");
        assert_eq!(stats.aborted_transactions, 3, "every transaction exhausts eventually");
        assert_eq!(stats.retries, 2 * 3, "each ran its full retry budget first");
        assert_eq!(stats.slave_errors, 3 * 3, "one error per attempt, three attempts each");
        assert_eq!(stats.timeouts, 0, "exhaustion, not the watchdog, resolved them");
    }

    #[test]
    fn inert_fault_config_leaves_split_results_unchanged() {
        let run = |faulty: bool| {
            let mut builder = SplitSystemBuilder::new(BusConfig::default())
                .master("a", script(&[(0, 4), (7, 2)]))
                .master("b", script(&[(0, 3)]))
                .split_slave("mem", 6, 2)
                .arbiter(Box::new(FixedOrderArbiter::new(3)));
            if faulty {
                builder = builder
                    .faults(FaultConfig::with_seed(11))
                    .retry_policy(RetryPolicy::exponential(3, 2));
            }
            let mut system = builder.build().expect("valid");
            system.run(100);
            (
                system.bus_stats().clone(),
                system.master_stats(0).clone(),
                system.master_stats(1).clone(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
