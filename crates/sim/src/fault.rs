//! Deterministic fault injection and recovery machinery.
//!
//! The paper evaluates LOTTERYBUS under fault-free traffic only; this
//! module opens the orthogonal experimental axis of *how arbitration
//! schemes degrade under stress*. It provides:
//!
//! * [`FaultPlan`] — a seeded plan of injected faults. Every decision
//!   is a pure function of `(seed, cycle, actor)` (a counter-based
//!   hash, no RNG state), so a fault-injected run is bit-for-bit
//!   reproducible and independent of evaluation order: the same
//!   `(spec, seed)` always yields the same fault sequence.
//! * [`RetryPolicy`] — per-master recovery with bounded retries and
//!   exponential backoff between attempts.
//! * A transaction **timeout watchdog** (configured on the system
//!   builders) that aborts transactions wedged at the head of a
//!   master's queue — e.g. behind a misbehaving arbiter — and records
//!   them.
//! * [`FaultEvent`] records — the fault trace — accumulated alongside
//!   the bus trace so experiments can correlate injected faults with
//!   latency effects.
//!
//! Injected fault classes (all drawn independently per cycle):
//!
//! * **Slave errors** — the addressed slave returns an error response
//!   for the whole tenure; the transfer does not happen and the master
//!   retries (or aborts) under its [`RetryPolicy`].
//! * **Slave outages** — a slave goes dark for a contiguous block of
//!   cycles; accesses during the outage fail like errors.
//! * **Grant drops / corruption** — the arbiter-to-bus grant path
//!   loses a grant cycle entirely, or delivers it to the wrong master.
//! * **Master stalls** — a master's request line is held deasserted
//!   for a bounded number of cycles (a stalled component).

use crate::cycle::Cycle;
use crate::ids::{MasterId, SlaveId};
use serde::{Deserialize, Serialize};

/// Fault-injection rates and shapes. All rates are per-opportunity
/// probabilities in `[0, 1]`; the all-zero default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the fault plan. Independent of traffic seeds.
    pub seed: u64,
    /// Probability that a granted access receives a slave error
    /// response (drawn per grant).
    pub slave_error_rate: f64,
    /// Probability that a slave is dark for a given outage block
    /// (drawn once per slave per block of `slave_outage_duration`
    /// cycles).
    pub slave_outage_rate: f64,
    /// Length, in cycles, of one slave outage block.
    pub slave_outage_duration: u32,
    /// Probability that a grant cycle is dropped on the way from the
    /// arbiter to the bus (drawn per grant).
    pub grant_drop_rate: f64,
    /// Probability that a grant is delivered to the wrong master
    /// (drawn per grant; the substitute master is drawn from the same
    /// plan).
    pub grant_corrupt_rate: f64,
    /// Probability per cycle that a master stalls (drawn per master
    /// per cycle while not already stalled).
    pub master_stall_rate: f64,
    /// Longest master stall, in cycles.
    pub master_stall_max: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            slave_error_rate: 0.0,
            slave_outage_rate: 0.0,
            slave_outage_duration: 32,
            grant_drop_rate: 0.0,
            grant_corrupt_rate: 0.0,
            master_stall_rate: 0.0,
            master_stall_max: 8,
        }
    }
}

impl FaultConfig {
    /// An inert config (all rates zero) with the given plan seed.
    pub fn with_seed(seed: u64) -> Self {
        FaultConfig { seed, ..FaultConfig::default() }
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.slave_error_rate > 0.0
            || self.slave_outage_rate > 0.0
            || self.grant_drop_rate > 0.0
            || self.grant_corrupt_rate > 0.0
            || self.master_stall_rate > 0.0
    }

    /// Checks rates and shapes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: any rate
    /// outside `[0, 1]`, a zero outage duration, or a zero stall bound
    /// while stalls have a nonzero rate.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("slave-error rate", self.slave_error_rate),
            ("slave-outage rate", self.slave_outage_rate),
            ("grant-drop rate", self.grant_drop_rate),
            ("grant-corrupt rate", self.grant_corrupt_rate),
            ("master-stall rate", self.master_stall_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if self.slave_outage_rate > 0.0 && self.slave_outage_duration == 0 {
            return Err("slave-outage duration must be at least 1 cycle".into());
        }
        if self.master_stall_rate > 0.0 && self.master_stall_max == 0 {
            return Err("master-stall max must be at least 1 cycle".into());
        }
        Ok(())
    }
}

/// Recovery policy for transactions that receive error responses:
/// up to `max_retries` further attempts, separated by an exponential
/// backoff (`backoff_base · backoff_factorᵏ⁻¹` cycles after the k-th
/// failure, capped at [`RetryPolicy::MAX_BACKOFF`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed after the first failed attempt; 0 aborts a
    /// transaction on its first error.
    pub max_retries: u32,
    /// Backoff after the first failure, in cycles.
    pub backoff_base: u64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: u64,
}

impl RetryPolicy {
    /// Upper bound on a single backoff interval, so exponential
    /// growth cannot wedge a master for an unbounded time.
    pub const MAX_BACKOFF: u64 = 4096;

    /// No retries: the first error aborts the transaction.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, backoff_base: 1, backoff_factor: 1 }
    }

    /// `max_retries` retries with backoff `base · 2ᵏ⁻¹`.
    pub fn exponential(max_retries: u32, base: u64) -> Self {
        RetryPolicy { max_retries, backoff_base: base, backoff_factor: 2 }
    }

    /// Backoff in cycles after the `attempts`-th failed attempt
    /// (1-based), capped at [`RetryPolicy::MAX_BACKOFF`].
    pub fn backoff_after(&self, attempts: u32) -> u64 {
        let mut backoff = self.backoff_base.min(Self::MAX_BACKOFF);
        for _ in 1..attempts {
            backoff = backoff.saturating_mul(self.backoff_factor);
            if backoff >= Self::MAX_BACKOFF {
                return Self::MAX_BACKOFF;
            }
        }
        backoff.min(Self::MAX_BACKOFF)
    }

    /// Checks the policy shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: a zero
    /// backoff base or factor.
    pub fn validate(&self) -> Result<(), String> {
        if self.backoff_base == 0 {
            return Err("retry backoff base must be at least 1 cycle".into());
        }
        if self.backoff_factor == 0 {
            return Err("retry backoff factor must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// What kind of fault (or recovery action) occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The addressed slave returned an error response.
    SlaveError {
        /// Master whose access failed.
        master: MasterId,
        /// Erroring slave.
        slave: SlaveId,
    },
    /// The addressed slave was dark (in an outage block).
    SlaveOutage {
        /// Master whose access failed.
        master: MasterId,
        /// Dark slave.
        slave: SlaveId,
    },
    /// A grant was lost between arbiter and bus.
    GrantDropped {
        /// Master that should have owned the bus.
        master: MasterId,
    },
    /// A grant was delivered to the wrong master.
    GrantCorrupted {
        /// Master the arbiter chose.
        from: MasterId,
        /// Master that actually received the bus.
        to: MasterId,
    },
    /// A master's request line stalled.
    MasterStalled {
        /// Stalled master.
        master: MasterId,
        /// First cycle at which it may request again.
        until: Cycle,
    },
    /// A failed transaction will retry after backoff.
    Retry {
        /// Retrying master.
        master: MasterId,
        /// Failed attempts so far (1-based).
        attempt: u32,
        /// First cycle at which the retry may request the bus.
        resume_at: Cycle,
    },
    /// A transaction exhausted its retries and was abandoned.
    Aborted {
        /// Master whose transaction was abandoned.
        master: MasterId,
        /// Total failed attempts.
        attempts: u32,
    },
    /// The watchdog aborted a transaction wedged at the queue head.
    Timeout {
        /// Master whose transaction was aborted.
        master: MasterId,
        /// Cycles the transaction was wedged.
        waited: u64,
    },
}

/// One entry of the fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the fault occurred.
    pub cycle: Cycle,
    /// What happened.
    pub kind: FaultKind,
}

// Decision-stream tags keeping the per-purpose hash draws independent.
const STREAM_SLAVE_ERROR: u64 = 0x51;
const STREAM_SLAVE_OUTAGE: u64 = 0x52;
const STREAM_GRANT_DROP: u64 = 0x53;
const STREAM_GRANT_CORRUPT: u64 = 0x54;
const STREAM_CORRUPT_TARGET: u64 = 0x55;
const STREAM_MASTER_STALL: u64 = 0x56;
const STREAM_STALL_LENGTH: u64 = 0x57;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault plan.
///
/// Every query is a pure function of `(seed, cycle, stream, actor)` —
/// the plan holds no mutable state, so fault decisions do not depend
/// on how many other decisions were drawn before them, and a plan can
/// be re-queried for any cycle at any time.
///
/// ```
/// use socsim::fault::{FaultConfig, FaultPlan};
/// use socsim::{Cycle, MasterId, SlaveId};
///
/// let cfg = FaultConfig { seed: 7, slave_error_rate: 0.5, ..FaultConfig::default() };
/// let plan = FaultPlan::new(cfg);
/// let hit = plan.slave_error_at(Cycle::new(3), SlaveId::new(0));
/// // Reproducible: the same (seed, cycle, slave) always agrees.
/// assert_eq!(hit, FaultPlan::new(cfg).slave_error_at(Cycle::new(3), SlaveId::new(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Wraps a configuration into a queryable plan.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    fn draw(&self, cycle: u64, stream: u64, actor: u64) -> u64 {
        mix(self.config.seed
            ^ mix(cycle)
            ^ mix(stream.wrapping_mul(0xa076_1d64_78bd_642f))
            ^ mix(actor.wrapping_mul(0xe703_7ed1_a0b4_28db)))
    }

    fn chance(&self, rate: f64, cycle: u64, stream: u64, actor: u64) -> bool {
        rate > 0.0
            && (self.draw(cycle, stream, actor) >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < rate
    }

    /// Whether an access to `slave` granted at `now` receives an error
    /// response.
    pub fn slave_error_at(&self, now: Cycle, slave: SlaveId) -> bool {
        self.chance(
            self.config.slave_error_rate,
            now.index(),
            STREAM_SLAVE_ERROR,
            slave.index() as u64,
        )
    }

    /// Whether `slave` is dark at `now` (inside an outage block).
    pub fn slave_out_at(&self, now: Cycle, slave: SlaveId) -> bool {
        if self.config.slave_outage_rate <= 0.0 {
            return false;
        }
        let block = now.index() / u64::from(self.config.slave_outage_duration.max(1));
        self.chance(self.config.slave_outage_rate, block, STREAM_SLAVE_OUTAGE, slave.index() as u64)
    }

    /// Whether the grant issued to `master` at `now` is lost.
    pub fn grant_dropped_at(&self, now: Cycle, master: MasterId) -> bool {
        self.chance(
            self.config.grant_drop_rate,
            now.index(),
            STREAM_GRANT_DROP,
            master.index() as u64,
        )
    }

    /// If the grant issued to `master` at `now` is corrupted, the raw
    /// draw selecting the substitute master (reduce modulo the master
    /// count).
    pub fn grant_corrupted_at(&self, now: Cycle, master: MasterId) -> Option<u64> {
        self.chance(
            self.config.grant_corrupt_rate,
            now.index(),
            STREAM_GRANT_CORRUPT,
            master.index() as u64,
        )
        .then(|| self.draw(now.index(), STREAM_CORRUPT_TARGET, master.index() as u64))
    }

    /// If `master` stalls starting at `now`, the stall length in
    /// cycles (in `1..=master_stall_max`).
    pub fn master_stall_at(&self, now: Cycle, master: MasterId) -> Option<u32> {
        self.chance(
            self.config.master_stall_rate,
            now.index(),
            STREAM_MASTER_STALL,
            master.index() as u64,
        )
        .then(|| {
            let span = u64::from(self.config.master_stall_max.max(1));
            1 + (self.draw(now.index(), STREAM_STALL_LENGTH, master.index() as u64) % span) as u32
        })
    }
}

/// Upper bound on retained fault-trace entries; beyond it the log
/// keeps counting but stops storing (mirrors [`crate::BusTrace`]'s
/// bounded recording).
const FAULT_LOG_CAPACITY: usize = 1 << 16;

/// The recorded fault trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
    total: u64,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Appends an event (dropped beyond capacity; still counted).
    pub fn record(&mut self, event: FaultEvent) {
        self.total += 1;
        if self.events.len() < FAULT_LOG_CAPACITY {
            self.events.push(event);
        }
    }

    /// Retained events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Total events recorded, including any beyond retention capacity.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The fault machinery a bus carries: the injection plan (if any),
/// the recovery policy, and the watchdog timeout.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FaultLayer {
    pub plan: Option<FaultPlan>,
    pub retry: RetryPolicy,
    pub timeout: Option<u64>,
    pub log: FaultLog,
    /// Masters whose head transaction was abandoned during the current
    /// bus step (retry exhaustion or watchdog). Cleared at the start of
    /// every step; drivers with per-transaction bookkeeping (the split
    /// system) consume it to keep their queues consistent. Unlike the
    /// log, this is never capped.
    pub step_aborts: Vec<MasterId>,
}

impl FaultLayer {
    pub(crate) fn new(plan: Option<FaultPlan>, retry: RetryPolicy, timeout: Option<u64>) -> Self {
        FaultLayer { plan, retry, timeout, log: FaultLog::new(), step_aborts: Vec::new() }
    }
}

/// Validates builder-level fault settings and assembles the layer a
/// bus should carry: `None` when nothing fault-related was configured,
/// so an unconfigured system pays no fault-path overhead at all.
///
/// Shared by [`crate::SystemBuilder`] and
/// [`crate::split::SplitSystemBuilder`].
pub(crate) fn build_fault_layer(
    faults: Option<FaultConfig>,
    retry: Option<RetryPolicy>,
    timeout: Option<u64>,
) -> Result<Option<FaultLayer>, crate::error::BuildSystemError> {
    use crate::error::BuildSystemError;
    if let Some(config) = &faults {
        config.validate().map_err(BuildSystemError::InvalidFaultConfig)?;
    }
    if let Some(policy) = &retry {
        policy.validate().map_err(BuildSystemError::InvalidRetryConfig)?;
    }
    if timeout == Some(0) {
        return Err(BuildSystemError::InvalidTimeout(0));
    }
    if faults.is_none() && retry.is_none() && timeout.is_none() {
        return Ok(None);
    }
    Ok(Some(FaultLayer::new(faults.map(FaultPlan::new), retry.unwrap_or_default(), timeout)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_and_reproducible() {
        let cfg = FaultConfig {
            seed: 99,
            slave_error_rate: 0.2,
            grant_drop_rate: 0.1,
            master_stall_rate: 0.05,
            master_stall_max: 6,
            ..FaultConfig::default()
        };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        for c in 0..2_000u64 {
            let now = Cycle::new(c);
            assert_eq!(
                a.slave_error_at(now, SlaveId::new(0)),
                b.slave_error_at(now, SlaveId::new(0))
            );
            assert_eq!(
                a.grant_dropped_at(now, MasterId::new(1)),
                b.grant_dropped_at(now, MasterId::new(1))
            );
            assert_eq!(
                a.master_stall_at(now, MasterId::new(2)),
                b.master_stall_at(now, MasterId::new(2))
            );
        }
    }

    #[test]
    fn query_order_does_not_matter() {
        let cfg = FaultConfig { seed: 5, slave_error_rate: 0.3, ..FaultConfig::default() };
        let plan = FaultPlan::new(cfg);
        let forward: Vec<bool> =
            (0..100).map(|c| plan.slave_error_at(Cycle::new(c), SlaveId::new(1))).collect();
        let backward: Vec<bool> = (0..100)
            .rev()
            .map(|c| plan.slave_error_at(Cycle::new(c), SlaveId::new(1)))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn rates_are_respected_statistically() {
        let cfg = FaultConfig { seed: 3, slave_error_rate: 0.25, ..FaultConfig::default() };
        let plan = FaultPlan::new(cfg);
        let hits =
            (0..100_000).filter(|&c| plan.slave_error_at(Cycle::new(c), SlaveId::new(0))).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::new(FaultConfig::with_seed(1234));
        for c in 0..10_000 {
            let now = Cycle::new(c);
            assert!(!plan.slave_error_at(now, SlaveId::new(0)));
            assert!(!plan.slave_out_at(now, SlaveId::new(0)));
            assert!(!plan.grant_dropped_at(now, MasterId::new(0)));
            assert!(plan.grant_corrupted_at(now, MasterId::new(0)).is_none());
            assert!(plan.master_stall_at(now, MasterId::new(0)).is_none());
        }
    }

    #[test]
    fn outages_cover_whole_blocks() {
        let cfg = FaultConfig {
            seed: 8,
            slave_outage_rate: 0.5,
            slave_outage_duration: 16,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg);
        for block in 0..200u64 {
            let first = plan.slave_out_at(Cycle::new(block * 16), SlaveId::new(0));
            for offset in 1..16 {
                assert_eq!(
                    plan.slave_out_at(Cycle::new(block * 16 + offset), SlaveId::new(0)),
                    first,
                    "outage must cover block {block} uniformly"
                );
            }
        }
    }

    #[test]
    fn config_validation_catches_bad_rates() {
        let mut cfg = FaultConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.slave_error_rate = 1.5;
        assert!(cfg.validate().unwrap_err().contains("slave-error"));
        cfg.slave_error_rate = -0.1;
        assert!(cfg.validate().is_err());
        cfg.slave_error_rate = 0.0;
        cfg.slave_outage_rate = 0.1;
        cfg.slave_outage_duration = 0;
        assert!(cfg.validate().unwrap_err().contains("duration"));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::exponential(10, 2);
        assert_eq!(policy.backoff_after(1), 2);
        assert_eq!(policy.backoff_after(2), 4);
        assert_eq!(policy.backoff_after(3), 8);
        assert_eq!(policy.backoff_after(30), RetryPolicy::MAX_BACKOFF);
        let linear = RetryPolicy { max_retries: 3, backoff_base: 5, backoff_factor: 1 };
        assert_eq!(linear.backoff_after(4), 5);
    }

    #[test]
    fn retry_validation_catches_zero_shapes() {
        assert!(RetryPolicy::none().validate().is_ok());
        let bad = RetryPolicy { max_retries: 1, backoff_base: 0, backoff_factor: 2 };
        assert!(bad.validate().unwrap_err().contains("base"));
        let bad = RetryPolicy { max_retries: 1, backoff_base: 1, backoff_factor: 0 };
        assert!(bad.validate().unwrap_err().contains("factor"));
    }

    #[test]
    fn fault_log_caps_retention_but_keeps_counting() {
        let mut log = FaultLog::new();
        for c in 0..(FAULT_LOG_CAPACITY as u64 + 10) {
            log.record(FaultEvent {
                cycle: Cycle::new(c),
                kind: FaultKind::GrantDropped { master: MasterId::new(0) },
            });
        }
        assert_eq!(log.events().len(), FAULT_LOG_CAPACITY);
        assert_eq!(log.total(), FAULT_LOG_CAPACITY as u64 + 10);
    }
}
