//! Performance statistics: bandwidth fractions and per-word latencies.
//!
//! These are exactly the metrics the paper reports: the fraction of total
//! bus bandwidth each component receives (Figures 4, 6a, 12a, Table 1) and
//! the average number of bus cycles spent per transferred word, including
//! both waiting and transfer time (Figures 6b, 12b, 12c, Table 1).

use crate::ids::MasterId;
use crate::master::Completion;
use serde::{Deserialize, Serialize};

/// A logarithmic histogram of per-transaction latencies: bucket *k*
/// counts transactions whose latency lies in `[2^k, 2^(k+1))` cycles.
///
/// The coarse buckets give quantile *upper bounds* within a factor of
/// two at constant memory — enough to see tail-latency differences
/// between arbiters, which averages hide.
///
/// ```
/// use socsim::stats::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for latency in [1, 2, 3, 100] {
///     h.record(latency);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.5), Some(4));    // half finish below 4 cycles
/// assert_eq!(h.quantile(1.0), Some(128));  // the stragglers below 128
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: vec![0; 64], count: 0 }
    }

    /// Records one transaction latency (in cycles).
    pub fn record(&mut self, latency: u64) {
        let bucket = if latency == 0 { 0 } else { 63 - latency.leading_zeros() as usize };
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated fraction of recorded latencies that are at most
    /// `latency` cycles (the empirical CDF), or `None` if nothing was
    /// recorded. Within the bucket containing `latency` the count is
    /// linearly interpolated. The result is monotone nondecreasing in
    /// `latency` and reaches 1.0 once `latency` covers every bucket.
    ///
    /// ```
    /// use socsim::stats::LatencyHistogram;
    /// let mut h = LatencyHistogram::new();
    /// for v in [0, 1, 2, 100] { h.record(v); }
    /// assert_eq!(h.fraction_at_most(0), Some(0.25));  // half of bucket [0, 2)
    /// assert_eq!(h.fraction_at_most(3), Some(0.75));
    /// assert_eq!(h.fraction_at_most(1_000), Some(1.0));
    /// ```
    pub fn fraction_at_most(&self, latency: u64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut included = 0.0f64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // Bucket k spans [lo, top] inclusive with `top = 2·lo − 1`,
            // computed overflow-free: for k = 63 that is exactly
            // `u64::MAX`. The former `checked_shl` saturation collapsed
            // the top bucket's upper bound onto `u64::MAX` *exclusive*,
            // mis-sizing its width and mis-judging coverage for
            // latencies near the top of the range.
            let lo = 1u64 << k;
            let top = lo - 1 + lo;
            if k == 0 {
                // Bucket 0 spans latencies [0, 2): `record(0)` and
                // `record(1)` both land here. At `latency == 0` half the
                // span is covered, matching the interpolation below.
                included += if latency >= 1 { c as f64 } else { c as f64 / 2.0 };
            } else if latency >= top {
                included += c as f64;
            } else if latency >= lo {
                // Linear interpolation inside the straddled bucket; the
                // width `lo` (= 2^k) is exact in f64 for every k.
                let covered = (latency - lo + 1) as f64 / lo as f64;
                included += c as f64 * covered;
            }
        }
        Some((included / self.count as f64).min(1.0))
    }

    /// An upper bound (within 2×) on the `q`-quantile latency, or
    /// `None` if nothing was recorded.
    ///
    /// Both edges have defined conventions:
    ///
    /// * `q == 0.0` returns the **lower** bound of the first occupied
    ///   bucket (`0` for bucket 0, else `2^k`) — a defined minimum.
    ///   Earlier versions clamped the rank to 1 here and reported that
    ///   bucket's *upper* bound, so an all-zero-latency histogram
    ///   claimed a 2-cycle minimum.
    /// * every `q > 0.0` (including `q == 1.0`) returns the 2× upper
    ///   bound `2^(k+1)` of the bucket holding the `ceil(q·count)`-th
    ///   smallest latency, saturating at `u64::MAX` for the top bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        if q == 0.0 {
            let first = self.buckets.iter().position(|&c| c > 0)?;
            return Some(if first == 0 { 0 } else { 1u64 << first });
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64.checked_shl(k as u32 + 1).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Accumulated statistics for one master.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterStats {
    /// Words actually transferred over the bus (including words of
    /// transactions still in flight when the run ended).
    pub words: u64,
    /// Transactions fully completed.
    pub transactions: u64,
    /// Words belonging to completed transactions (the denominator of
    /// [`MasterStats::cycles_per_word`]).
    pub completed_words: u64,
    /// Sum over completed transactions of (completion − issue) cycles.
    pub total_latency: u64,
    /// Sum over completed transactions of (first grant − issue) cycles.
    pub total_wait: u64,
    /// Largest single-transaction latency observed.
    pub max_latency: u64,
    /// Number of grants received (bursts won).
    pub grants: u64,
    /// Slave error responses (including outage cycles) received.
    pub slave_errors: u64,
    /// Failed attempts that were re-queued for retry.
    pub retries: u64,
    /// Transactions aborted by the bus watchdog timeout.
    pub timeouts: u64,
    /// Transactions abandoned without completing (retry exhaustion plus
    /// watchdog timeouts).
    pub aborted: u64,
    /// Distribution of per-transaction latencies.
    pub latency_histogram: LatencyHistogram,
}

impl MasterStats {
    /// Average bus cycles per word over completed transactions, including
    /// waiting and transfer time. Returns `None` before any completion.
    ///
    /// This is the paper's latency metric: Σ latency / Σ words.
    pub fn cycles_per_word(&self) -> Option<f64> {
        (self.completed_words > 0).then(|| self.total_latency as f64 / self.completed_words as f64)
    }

    /// Average waiting cycles per completed transaction.
    pub fn wait_per_transaction(&self) -> Option<f64> {
        (self.transactions > 0).then(|| self.total_wait as f64 / self.transactions as f64)
    }

    /// Upper bound (within 2×) on the `q`-quantile per-transaction
    /// latency, e.g. `latency_quantile(0.99)` for tail latency.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        self.latency_histogram.quantile(q)
    }

    /// Records a completed transaction of `words` words with the given
    /// end-to-end `latency` and initial `wait` (all in cycles). Used by
    /// both the single-bus statistics and multi-channel end-to-end
    /// accounting.
    #[inline]
    pub fn record_transaction(&mut self, words: u32, latency: u64, wait: u64) {
        self.transactions += 1;
        self.completed_words += u64::from(words);
        self.total_latency += latency;
        self.total_wait += wait;
        self.max_latency = self.max_latency.max(latency);
        self.latency_histogram.record(latency);
    }
}

/// Jain's fairness index of a set of allocations:
/// `(Σxᵢ)² / (n·Σxᵢ²)`. Equal shares score 1; a single hog among `n`
/// components scores `1/n`. Used to quantify how evenly an arbiter
/// distributes bandwidth relative to the intended weights (divide each
/// share by its weight first for weighted fairness).
///
/// Returns 0 for an empty or all-zero input.
///
/// ```
/// use socsim::stats::jain_fairness_index;
/// assert!((jain_fairness_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_fairness_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_fairness_index(allocations: &[f64]) -> f64 {
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if allocations.is_empty() || sum_sq == 0.0 {
        0.0
    } else {
        sum * sum / (allocations.len() as f64 * sum_sq)
    }
}

/// Statistics for a whole simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BusStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles in which a word was transferred.
    pub busy_cycles: u64,
    /// Cycles lost to arbitration overhead or slave wait states.
    pub stall_cycles: u64,
    /// Total grants issued.
    pub grants: u64,
    /// Injected slave error responses (including outage cycles).
    pub slave_errors: u64,
    /// Grants dropped on the arbiter-to-master path.
    pub dropped_grants: u64,
    /// Grants delivered to the wrong master.
    pub corrupted_grants: u64,
    /// Failed attempts re-queued for retry.
    pub retries: u64,
    /// Transactions aborted by the watchdog timeout.
    pub timeouts: u64,
    /// Transactions abandoned without completing (retry exhaustion plus
    /// watchdog timeouts).
    pub aborted_transactions: u64,
    /// Times the failover arbiter replaced a misbehaving primary.
    pub failovers: u64,
    /// Arbitration decisions taken with two or more masters pending —
    /// the cycles in which the arbiter actually had to choose.
    pub contended_arbitrations: u64,
    per_master: Vec<MasterStats>,
}

impl BusStats {
    /// Creates empty statistics for `masters` masters.
    pub fn new(masters: usize) -> Self {
        BusStats {
            cycles: 0,
            busy_cycles: 0,
            stall_cycles: 0,
            grants: 0,
            slave_errors: 0,
            dropped_grants: 0,
            corrupted_grants: 0,
            retries: 0,
            timeouts: 0,
            aborted_transactions: 0,
            failovers: 0,
            contended_arbitrations: 0,
            per_master: vec![MasterStats::default(); masters],
        }
    }

    /// Per-master statistics, indexed by master id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this bus.
    pub fn master(&self, id: MasterId) -> &MasterStats {
        &self.per_master[id.index()]
    }

    /// All per-master statistics in master-id order.
    pub fn masters(&self) -> &[MasterStats] {
        &self.per_master
    }

    /// Fraction of total bus bandwidth consumed by `id`:
    /// words transferred by the master divided by elapsed cycles.
    pub fn bandwidth_fraction(&self, id: MasterId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.per_master[id.index()].words as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in which the bus transferred a word.
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of bus bandwidth left unused (idle or stalled).
    pub fn unused_fraction(&self) -> f64 {
        1.0 - self.bus_utilization()
    }

    /// Records a grant to `id`.
    #[inline]
    pub fn record_grant(&mut self, id: MasterId) {
        self.grants += 1;
        self.per_master[id.index()].grants += 1;
    }

    /// Records `n` grants to `id` in one step — the batched form of
    /// [`BusStats::record_grant`] used by the fleet's arithmetic TDMA
    /// wheel walk. Equivalent to calling it `n` times.
    #[inline]
    pub fn record_grants(&mut self, id: MasterId, n: u64) {
        self.grants += n;
        self.per_master[id.index()].grants += n;
    }

    /// Records `words` transferred by `id` (each word = one busy cycle).
    #[inline]
    pub fn record_words(&mut self, id: MasterId, words: u32) {
        self.busy_cycles += u64::from(words);
        self.per_master[id.index()].words += u64::from(words);
    }

    /// Records stall cycles (arbitration overhead / wait states).
    #[inline]
    pub fn record_stall(&mut self, cycles: u32) {
        self.stall_cycles += u64::from(cycles);
    }

    /// Records a completed transaction.
    #[inline]
    pub fn record_completion(&mut self, id: MasterId, completion: &Completion) {
        self.per_master[id.index()].record_transaction(
            completion.txn.words(),
            completion.latency(),
            completion.wait(),
        );
    }

    /// Records an injected slave error response received by `id`.
    pub fn record_slave_error(&mut self, id: MasterId) {
        self.slave_errors += 1;
        self.per_master[id.index()].slave_errors += 1;
    }

    /// Records a grant dropped on its way to the granted master.
    pub fn record_dropped_grant(&mut self) {
        self.dropped_grants += 1;
    }

    /// Records a grant delivered to the wrong master.
    pub fn record_corrupted_grant(&mut self) {
        self.corrupted_grants += 1;
    }

    /// Records a failed attempt by `id` that was re-queued for retry.
    pub fn record_retry(&mut self, id: MasterId) {
        self.retries += 1;
        self.per_master[id.index()].retries += 1;
    }

    /// Records a transaction of `id` abandoned after exhausting retries.
    pub fn record_abort(&mut self, id: MasterId) {
        self.aborted_transactions += 1;
        self.per_master[id.index()].aborted += 1;
    }

    /// Records a wedged transaction of `id` aborted by the watchdog
    /// (counted both as a timeout and as an aborted transaction).
    pub fn record_timeout(&mut self, id: MasterId) {
        self.timeouts += 1;
        self.per_master[id.index()].timeouts += 1;
        self.record_abort(id);
    }

    /// Total injected fault disturbances recorded in these statistics
    /// (errors, dropped/corrupted grants — retries and aborts are
    /// consequences, not separate disturbances).
    pub fn fault_disturbances(&self) -> u64 {
        self.slave_errors + self.dropped_grants + self.corrupted_grants
    }

    /// Records an arbitration decision taken while two or more masters
    /// were pending (a *contended* arbitration).
    #[inline]
    pub fn record_contended_arbitration(&mut self) {
        self.contended_arbitrations += 1;
    }

    /// Records `n` contended arbitration decisions in one step — the
    /// batched form of [`BusStats::record_contended_arbitration`].
    #[inline]
    pub fn record_contended_arbitrations(&mut self, n: u64) {
        self.contended_arbitrations += n;
    }

    /// Counts one elapsed simulation cycle. Called once per [`crate::System::step`],
    /// so resetting statistics after a warm-up period measures only the
    /// steady-state window.
    #[inline]
    pub fn record_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Counts `n` elapsed simulation cycles in one step — the Δ-cycle
    /// aware form of [`BusStats::record_cycle`] used when the
    /// fast-forward kernel jumps over an idle span. Equivalent to
    /// calling [`BusStats::record_cycle`] `n` times.
    pub fn record_cycles(&mut self, n: u64) {
        self.cycles += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::Cycle;
    use crate::ids::SlaveId;
    use crate::request::Transaction;

    fn completion(words: u32, issued: u64, granted: u64, finished: u64) -> Completion {
        let mut port = crate::master::MasterPort::new(MasterId::new(0), "m");
        port.enqueue(Transaction::new(SlaveId::new(0), words, Cycle::new(issued)));
        port.note_grant(Cycle::new(granted));
        port.transfer(words, Cycle::new(finished - 1)).expect("completes")
    }

    #[test]
    fn cycles_per_word_matches_paper_definition() {
        let mut stats = BusStats::new(2);
        // 4 words issued at cycle 0, finished after cycle 7 => latency 8.
        let c = completion(4, 0, 2, 8);
        stats.record_completion(MasterId::new(0), &c);
        stats.record_words(MasterId::new(0), 4);
        let m = stats.master(MasterId::new(0));
        assert_eq!(m.cycles_per_word(), Some(2.0));
        assert_eq!(m.wait_per_transaction(), Some(2.0));
        assert_eq!(m.max_latency, 8);
    }

    #[test]
    fn bandwidth_fractions_sum_to_utilization() {
        let mut stats = BusStats::new(2);
        stats.record_words(MasterId::new(0), 30);
        stats.record_words(MasterId::new(1), 50);
        for _ in 0..100 {
            stats.record_cycle();
        }
        let total: f64 = (0..2).map(|i| stats.bandwidth_fraction(MasterId::new(i))).sum();
        assert!((total - stats.bus_utilization()).abs() < 1e-12);
        assert!((stats.bus_utilization() - 0.8).abs() < 1e-12);
        assert!((stats.unused_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn batched_cycle_count_matches_the_loop() {
        let mut looped = BusStats::new(1);
        for _ in 0..137 {
            looped.record_cycle();
        }
        let mut batched = BusStats::new(1);
        batched.record_cycles(137);
        assert_eq!(looped, batched);
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let stats = BusStats::new(1);
        assert_eq!(stats.bandwidth_fraction(MasterId::new(0)), 0.0);
        assert_eq!(stats.bus_utilization(), 0.0);
        assert_eq!(stats.master(MasterId::new(0)).cycles_per_word(), None);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let mut h = LatencyHistogram::new();
        for latency in 1..=1000u64 {
            h.record(latency);
        }
        assert_eq!(h.count(), 1000);
        // Every quantile bound is within 2x above the true quantile.
        for (q, truth) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let bound = h.quantile(q).expect("recorded");
            assert!(bound >= truth, "q={q}: bound {bound} below true {truth}");
            assert!(bound <= truth * 2 + 2, "q={q}: bound {bound} too loose for {truth}");
        }
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        // q = 0 is the lower bound of the first occupied bucket.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn quantile_zero_is_a_defined_minimum() {
        // Regression: `quantile(0.0)` used to clamp the rank to 1 and
        // report the first occupied bucket's *upper* bound — an
        // all-zero-latency histogram claimed a 2-cycle minimum.
        let mut zeros = LatencyHistogram::new();
        for _ in 0..5 {
            zeros.record(0);
        }
        assert_eq!(zeros.quantile(0.0), Some(0));
        assert_eq!(zeros.quantile(1.0), Some(2), "q > 0 keeps the 2x upper-bound convention");

        // A histogram whose smallest latency is 100 (bucket 6, spanning
        // [64, 128)) reports the bucket's lower bound 64 at q = 0.
        let mut h = LatencyHistogram::new();
        for v in [100u64, 3000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(64));
        assert!(h.quantile(0.0).unwrap() <= 100, "q=0 must not exceed the true minimum");
        assert_eq!(h.quantile(0.5), Some(128));
    }

    #[test]
    fn cdf_is_exact_at_bucket_boundaries_and_u64_max() {
        // Regression: the old `checked_shl(64)` saturation mis-sized the
        // top bucket [2^63, u64::MAX], claiming full coverage for any
        // latency >= 2^63 even when larger latencies were recorded.
        let mut h = LatencyHistogram::new();
        h.record(42); // bucket 5
        h.record(u64::MAX); // top bucket [2^63, u64::MAX]
        assert_eq!(h.fraction_at_most(u64::MAX), Some(1.0));
        // One cycle below the top bucket's lower bound covers none of it.
        assert_eq!(h.fraction_at_most((1u64 << 63) - 1), Some(0.5));
        // The bottom of the top bucket covers ~2^-63 of its width.
        let at_lo = h.fraction_at_most(1u64 << 63).expect("recorded");
        assert!((0.5..0.51).contains(&at_lo), "top-bucket coverage mis-sized: {at_lo}");

        // Exact boundaries: the inclusive top of bucket k is 2^(k+1)-1;
        // coverage there equals the whole bucket, and one cycle below the
        // bucket's lower bound contributes nothing.
        let mut b = LatencyHistogram::new();
        for v in [4u64, 5, 6, 7] {
            b.record(v); // bucket 2: [4, 8)
        }
        assert_eq!(b.fraction_at_most(3), Some(0.0));
        assert_eq!(b.fraction_at_most(4), Some(0.25));
        assert_eq!(b.fraction_at_most(7), Some(1.0));
        assert_eq!(b.fraction_at_most(8), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn histogram_rejects_silly_quantiles() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn zero_latency_records_are_visible_in_the_cdf() {
        // Regression: `record(0)` lands in bucket 0, but the old bucket-0
        // branch required `latency >= 1`, so `fraction_at_most(0)` was
        // 0.0 no matter how many zero-latency transactions were recorded.
        let mut h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(0);
        }
        // Bucket 0 spans [0, 2); latency 0 covers half the span.
        assert_eq!(h.fraction_at_most(0), Some(0.5));
        assert_eq!(h.fraction_at_most(1), Some(1.0));

        // Mixed with larger latencies the zero records still count.
        h.record(8);
        let at_zero = h.fraction_at_most(0).expect("recorded");
        assert!(at_zero > 0.0, "zero-latency records invisible: {at_zero}");
        assert_eq!(h.fraction_at_most(1), Some(0.8));
    }

    #[test]
    fn cdf_is_monotone_from_zero_and_reaches_one() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 0, 1, 3, 7, 90, 1000] {
            h.record(v);
        }
        let mut previous = -1.0f64;
        for latency in (0..=2048).chain([u64::MAX / 2, u64::MAX]) {
            let f = h.fraction_at_most(latency).expect("recorded");
            assert!(f >= previous, "CDF dipped at {latency}: {f} < {previous}");
            assert!((0.0..=1.0).contains(&f));
            previous = f;
        }
        assert_eq!(h.fraction_at_most(u64::MAX), Some(1.0));
    }

    #[test]
    fn grants_and_stalls_accumulate() {
        let mut stats = BusStats::new(1);
        stats.record_grant(MasterId::new(0));
        stats.record_grant(MasterId::new(0));
        stats.record_stall(3);
        assert_eq!(stats.grants, 2);
        assert_eq!(stats.master(MasterId::new(0)).grants, 2);
        assert_eq!(stats.stall_cycles, 3);
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut stats = BusStats::new(2);
        let m0 = MasterId::new(0);
        let m1 = MasterId::new(1);
        stats.record_slave_error(m0);
        stats.record_retry(m0);
        stats.record_slave_error(m0);
        stats.record_abort(m0);
        stats.record_timeout(m1);
        stats.record_dropped_grant();
        stats.record_corrupted_grant();
        assert_eq!(stats.slave_errors, 2);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.timeouts, 1);
        // Timeouts count as aborts too: one retry-exhaustion + one watchdog.
        assert_eq!(stats.aborted_transactions, 2);
        assert_eq!(stats.fault_disturbances(), 4);
        assert_eq!(stats.master(m0).slave_errors, 2);
        assert_eq!(stats.master(m0).retries, 1);
        assert_eq!(stats.master(m0).aborted, 1);
        assert_eq!(stats.master(m1).timeouts, 1);
        assert_eq!(stats.master(m1).aborted, 1);
    }
}
