//! The arbitration interface between the bus and a protocol implementation.

use crate::cycle::Cycle;
use crate::ids::MasterId;
use crate::request::RequestMap;

/// The outcome of one arbitration decision: which master owns the bus next
/// and for at most how many words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The master granted ownership of the bus.
    pub master: MasterId,
    /// Upper bound on the number of words this grant may transfer.
    ///
    /// The bus additionally caps every grant by its configured maximum
    /// burst size and by the words remaining in the granted master's head
    /// transaction. Use [`Grant::whole_burst`] for protocols that delegate
    /// the cap entirely to the bus (priority, round-robin, lottery) and
    /// [`Grant::single_word`] for slot-based protocols (TDMA).
    pub max_words: u32,
}

impl Grant {
    /// A grant limited only by the bus's burst size and the master's need.
    pub fn whole_burst(master: MasterId) -> Self {
        Grant { master, max_words: u32::MAX }
    }

    /// A grant for exactly one bus word (one TDMA slot).
    pub fn single_word(master: MasterId) -> Self {
        Grant { master, max_words: 1 }
    }
}

/// A bus arbitration protocol.
///
/// The bus calls [`Arbiter::arbitrate`] exactly once per cycle in which the
/// bus is not occupied by an in-flight burst, passing the current request
/// map. Returning `None` leaves the bus idle for that cycle (e.g. a TDMA
/// slot whose owner is idle and no other master requests, or a token-ring
/// hop cycle).
///
/// Implementations must only grant masters whose request line is asserted;
/// the bus enforces this with a debug assertion.
pub trait Arbiter {
    /// Decides bus ownership for the cycle `now`.
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant>;

    /// A short human-readable protocol name, e.g. `"static-priority"`.
    fn name(&self) -> &str;

    /// Number of times this arbiter replaced a misbehaving primary with
    /// a backup policy. Only failover wrappers report nonzero values;
    /// plain protocols keep the default.
    fn failovers(&self) -> u64 {
        0
    }

    /// The earliest cycle `>= now` at which an [`Arbiter::arbitrate`]
    /// call with an **empty** request map would do something that
    /// [`Arbiter::skip_idle`] cannot replicate (e.g. a periodic ticket
    /// re-evaluation keyed on the cycle index).
    ///
    /// The fast-forward kernel never skips past this horizon. Returning
    /// `now` means "never skip over my idle decisions" — the safe
    /// default for protocols the kernel knows nothing about — while
    /// protocols whose idle behaviour is pure or a simple function of
    /// the number of skipped cycles return [`Cycle::NEVER`] and
    /// implement [`Arbiter::skip_idle`].
    fn next_event(&self, now: Cycle) -> Cycle {
        now
    }

    /// Replicates the state change of `delta` consecutive
    /// [`Arbiter::arbitrate`] calls with an empty request map, without
    /// performing them.
    ///
    /// Called by the fast-forward kernel when it jumps over `delta`
    /// cycles in which the bus was idle and no master requested. The
    /// default is a no-op, correct for every protocol that ignores
    /// empty maps (and, combined with the conservative
    /// [`Arbiter::next_event`] default, never reached for protocols
    /// that don't opt in).
    fn skip_idle(&mut self, delta: u64) {
        let _ = delta;
    }

    /// Cross-lane grouping key for fleet SoA lowering, or `None` for
    /// protocols (or configurations) that must stay scalar.
    ///
    /// Two arbiters returning the same signature promise that
    /// [`Arbiter::lower_group`] can host them as slots of one shared
    /// [`SoaKernel`]. The signature encodes only the protocol variant
    /// and the master count — never configuration contents, so a
    /// collision can group differently-configured lanes; kernels keep
    /// per-slot state for everything that differs and deduplicate
    /// shared tables by *actual equality* internally.
    ///
    /// The default keeps every protocol scalar. The boxed forwarding
    /// impl deliberately does **not** forward this method: a
    /// `Box<dyn Arbiter>` erases the concrete type that
    /// [`Arbiter::lower_group`] would need, so dyn-boxed lanes always
    /// take the scalar path.
    fn soa_signature(&self) -> Option<u64> {
        None
    }

    /// Lowers a group of same-signature arbiters into one SoA decision
    /// kernel, cloning each peer's live state into slot `i` of the
    /// kernel. Returns `None` when the group cannot be lowered (the
    /// fleet then keeps every member scalar).
    ///
    /// Only called with peers that all reported one identical
    /// `Some(signature)`.
    fn lower_group(peers: &[&Self]) -> Option<Box<dyn SoaKernel>>
    where
        Self: Sized,
    {
        let _ = peers;
        None
    }

    /// Copies slot `slot` of `kernel` back into this scalar arbiter, so
    /// external observers (scenario probes, runtime knobs) see exactly
    /// the state scalar execution would have produced. The default is a
    /// no-op, correct for protocols that never lower.
    fn writeback_from(&mut self, kernel: &dyn SoaKernel, slot: usize) {
        let _ = (kernel, slot);
    }
}

/// A structure-of-arrays decision kernel hosting a whole fleet group of
/// same-protocol arbiters, one *slot* per lane.
///
/// Produced by [`Arbiter::lower_group`] at `Fleet::build`. Per-slot
/// calls replicate the scalar protocol **exactly** — same grants, same
/// state evolution, same randomness consumption — while the kernel
/// shares whatever precomputation its slots have in common (largest-
/// remainder ticket tables, priority waterfalls, TDMA wheels).
pub trait SoaKernel: std::any::Any {
    /// Decides bus ownership for slot `slot` at cycle `now`; the SoA
    /// twin of [`Arbiter::arbitrate`].
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, now: Cycle) -> Option<Grant>;

    /// The SoA twin of [`Arbiter::next_event`]. Defaults conservative.
    fn next_event_slot(&self, slot: usize, now: Cycle) -> Cycle {
        let _ = slot;
        now
    }

    /// The SoA twin of [`Arbiter::skip_idle`].
    fn skip_idle_slot(&mut self, slot: usize, delta: u64) {
        let _ = (slot, delta);
    }

    /// Slot-wheel walk tables for arithmetic TDMA batching, or `None`
    /// for protocols without a slot wheel. A `Some` return promises
    /// that, while **every** master stays pending, the grant sequence
    /// from the current position is exactly the wheel sequence (no
    /// reclaim fires) and each grant is [`Grant::single_word`].
    fn wheel_walk(&self, slot: usize) -> Option<WheelWalk<'_>> {
        let _ = slot;
        None
    }

    /// Advances slot `slot`'s wheel position by `cycles` granted
    /// cycles, completing a [`SoaKernel::wheel_walk`] batch.
    fn advance_wheel(&mut self, slot: usize, cycles: u64) {
        let _ = (slot, cycles);
    }

    /// Downcasting hook for [`Arbiter::writeback_from`].
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A borrowed view of one slot's TDMA wheel for arithmetic batching:
/// the current position plus, per master, the sorted wheel indices it
/// owns. Lets the fleet compute occurrence counts and offsets in
/// O(log slots) without touching the per-cycle path.
pub struct WheelWalk<'a> {
    position: usize,
    len: usize,
    positions: &'a [Vec<u32>],
}

impl<'a> WheelWalk<'a> {
    /// Builds a walk view over `positions` (per-master sorted wheel
    /// indices; every index `< len`) starting at `position`.
    pub fn new(position: usize, len: usize, positions: &'a [Vec<u32>]) -> Self {
        debug_assert!(position < len);
        WheelWalk { position, len, positions }
    }

    /// Cycle offset (0-based, counted from the current position) of the
    /// `k`-th (1-based) grant to `master`, or `None` if the master owns
    /// no wheel slots.
    pub fn occurrence_offset(&self, master: usize, k: u64) -> Option<u64> {
        let pos = &self.positions[master];
        let t = pos.len() as u64;
        if t == 0 || k == 0 {
            return None;
        }
        let idx0 = pos.partition_point(|&q| (q as usize) < self.position) as u64;
        let a = idx0 + (k - 1);
        let lap = a / t;
        let w = (a % t) as usize;
        Some(lap * self.len as u64 + pos[w] as u64 - self.position as u64)
    }

    /// Number of grants `master` receives in the next `window` cycles.
    pub fn count_in(&self, master: usize, window: u64) -> u64 {
        let pos = &self.positions[master];
        let t = pos.len() as u64;
        if t == 0 || window == 0 {
            return 0;
        }
        let len = self.len;
        let laps = window / len as u64;
        let rem = (window % len as u64) as usize;
        let below = |bound: usize| pos.partition_point(|&q| (q as usize) < bound);
        let partial = if self.position + rem <= len {
            below(self.position + rem) - below(self.position)
        } else {
            (below(len) - below(self.position)) + below(self.position + rem - len)
        };
        laps * t + partial as u64
    }
}

impl<A: Arbiter + ?Sized> Arbiter for Box<A> {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        (**self).arbitrate(requests, now)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn failovers(&self) -> u64 {
        (**self).failovers()
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        (**self).next_event(now)
    }

    fn skip_idle(&mut self, delta: u64) {
        (**self).skip_idle(delta)
    }
}

/// Conversion into the arbiter slot of a [`crate::SystemBuilder`].
///
/// [`crate::SystemBuilder::arbiter`] accepts `impl IntoArbiter<A>`
/// rather than `A` directly so that passing `Box<Concrete>` to a
/// builder whose arbiter slot is the default `Box<dyn Arbiter>` keeps
/// compiling: the unsizing step happens through the second impl below
/// instead of a coercion the inference engine would otherwise pin to
/// `Box<Concrete>` before seeing the builder's annotated type.
pub trait IntoArbiter<A> {
    /// Converts `self` into the builder's arbiter type.
    fn into_arbiter(self) -> A;
}

impl<A: Arbiter> IntoArbiter<A> for A {
    fn into_arbiter(self) -> A {
        self
    }
}

impl<T: Arbiter + 'static> IntoArbiter<Box<dyn Arbiter>> for Box<T> {
    fn into_arbiter(self) -> Box<dyn Arbiter> {
        self
    }
}

/// The simplest possible arbiter: always grants the lowest-indexed pending
/// master a whole burst.
///
/// Useful as a deterministic placeholder in tests and doc examples; it is
/// equivalent to a static-priority arbiter in which lower master indices
/// have higher priority.
#[derive(Debug, Clone)]
pub struct FixedOrderArbiter {
    masters: usize,
}

impl FixedOrderArbiter {
    /// Creates a fixed-order arbiter for `masters` masters.
    pub fn new(masters: usize) -> Self {
        FixedOrderArbiter { masters }
    }

    /// Number of masters this arbiter serves.
    pub fn masters(&self) -> usize {
        self.masters
    }
}

impl Arbiter for FixedOrderArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        requests.iter_pending().next().map(Grant::whole_burst)
    }

    fn name(&self) -> &str {
        "fixed-order"
    }

    // Stateless: idle decisions neither observe the cycle index nor
    // mutate anything, so the fast-forward kernel may skip them freely.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_order_prefers_lowest_index() {
        let mut arb = FixedOrderArbiter::new(4);
        let mut map = RequestMap::new(4);
        map.set_pending(MasterId::new(3), 1);
        map.set_pending(MasterId::new(1), 1);
        let grant = arb.arbitrate(&map, Cycle::ZERO).expect("grant");
        assert_eq!(grant.master, MasterId::new(1));
        assert_eq!(grant.max_words, u32::MAX);
    }

    #[test]
    fn fixed_order_idles_on_empty_map() {
        let mut arb = FixedOrderArbiter::new(2);
        let map = RequestMap::new(2);
        assert!(arb.arbitrate(&map, Cycle::ZERO).is_none());
    }

    #[test]
    fn grant_constructors() {
        let m = MasterId::new(2);
        assert_eq!(Grant::whole_burst(m).max_words, u32::MAX);
        assert_eq!(Grant::single_word(m).max_words, 1);
    }

    #[test]
    fn boxed_arbiter_delegates() {
        let mut arb: Box<dyn Arbiter> = Box::new(FixedOrderArbiter::new(2));
        let mut map = RequestMap::new(2);
        map.set_pending(MasterId::new(0), 1);
        assert!(arb.arbitrate(&map, Cycle::ZERO).is_some());
        assert_eq!(arb.name(), "fixed-order");
        assert_eq!(arb.next_event(Cycle::new(9)), Cycle::NEVER, "box forwards next_event");
        arb.skip_idle(1_000);
        assert!(arb.arbitrate(&map, Cycle::new(1_000)).is_some());
    }

    #[test]
    fn default_horizon_is_conservative() {
        // An arbiter that doesn't opt into fast-forward must pin the
        // horizon to `now` so the kernel never skips its idle calls.
        struct Opaque;
        impl Arbiter for Opaque {
            fn arbitrate(&mut self, _r: &RequestMap, _now: Cycle) -> Option<Grant> {
                None
            }
            fn name(&self) -> &str {
                "opaque"
            }
        }
        let arb = Opaque;
        assert_eq!(arb.next_event(Cycle::new(42)), Cycle::new(42));
    }
}
