//! Multi-channel communication architectures: several shared buses
//! connected by bridges.
//!
//! The LOTTERYBUS paper does not presume a flat, system-wide bus: "the
//! components may be interconnected by an arbitrary network of shared
//! channels", with "a centralized lottery manager for each shared
//! channel" (§4.1), and §2.3 describes hierarchical bus architectures
//! "in which multiple buses are arranged in a hierarchy, with bridges
//! permitting cross-hierarchy communications". This module provides that
//! topology: each channel has its own configuration and arbiter, and
//! directed bridges store-and-forward transactions between channels with
//! bounded buffering and back-pressure.
//!
//! ```
//! use socsim::arbiter::FixedOrderArbiter;
//! use socsim::multichannel::{ChannelId, MultiChannelBuilder};
//! use socsim::{BusConfig, Slave, SlaveId, Cycle, Transaction, TrafficSource};
//!
//! struct Once(Option<Transaction>);
//! impl TrafficSource for Once {
//!     fn poll(&mut self, _now: Cycle) -> Option<Transaction> { self.0.take() }
//! }
//!
//! # fn main() -> Result<(), socsim::BuildSystemError> {
//! // Two channels; the master on channel 0 talks to a memory on
//! // channel 1 through a bridge.
//! let mut system = MultiChannelBuilder::new()
//!     .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
//!     .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
//!     .master("cpu", ChannelId::new(0), Box::new(Once(Some(
//!         Transaction::new(SlaveId::new(0), 4, Cycle::ZERO)))))
//!     .slave(Slave::new(SlaveId::new(0), "mem"), ChannelId::new(1))
//!     .bridge(ChannelId::new(0), ChannelId::new(1), 4)
//!     .build()?;
//! system.run(64);
//! assert_eq!(system.master_stats(0).transactions, 1);
//! # Ok(())
//! # }
//! ```

use crate::arbiter::Arbiter;
use crate::bus::Bus;
use crate::config::BusConfig;
use crate::cycle::Cycle;
use crate::error::BuildSystemError;
use crate::ids::{MasterId, SlaveId};
use crate::master::MasterPort;
use crate::request::{Transaction, MAX_MASTERS};
use crate::slave::Slave;
use crate::stats::{BusStats, MasterStats};
use crate::system::TrafficSource;
use crate::trace::BusTrace;
use std::collections::VecDeque;

/// Identifies one shared channel (bus) in a multi-channel system.
///
/// Channels are numbered densely in the order they are added to the
/// builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(usize);

impl ChannelId {
    /// Creates a channel id from its dense index.
    pub fn new(index: usize) -> Self {
        ChannelId(index)
    }

    /// The dense index of this channel.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// What a channel-local actor (request-line owner) represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Actor {
    /// An original master, by global master index.
    Master(usize),
    /// The egress port of a bridge, by bridge index.
    Bridge(usize),
}

struct Channel {
    bus: Bus,
    arbiter: Box<dyn Arbiter>,
    ports: Vec<MasterPort>,
    actors: Vec<Actor>,
    slaves: Vec<Slave>,
    stats: BusStats,
    trace: BusTrace,
}

struct BridgeState {
    to: usize,
    capacity: usize,
    /// Index of the bridge's egress port within `channels[to].ports`.
    actor: usize,
    /// Originating global master of each queued transaction, FIFO.
    origins: VecDeque<usize>,
}

/// Builder for a [`MultiChannelSystem`].
pub struct MultiChannelBuilder {
    channels: Vec<(BusConfig, Box<dyn Arbiter>)>,
    masters: Vec<(String, usize, Box<dyn TrafficSource>)>,
    slaves: Vec<(Slave, usize)>,
    bridges: Vec<(usize, usize, usize)>,
}

impl std::fmt::Debug for MultiChannelBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiChannelBuilder")
            .field("channels", &self.channels.len())
            .field("masters", &self.masters.len())
            .field("slaves", &self.slaves.len())
            .field("bridges", &self.bridges.len())
            .finish()
    }
}

impl Default for MultiChannelBuilder {
    fn default() -> Self {
        MultiChannelBuilder::new()
    }
}

impl MultiChannelBuilder {
    /// Starts building an empty topology.
    pub fn new() -> Self {
        MultiChannelBuilder {
            channels: Vec::new(),
            masters: Vec::new(),
            slaves: Vec::new(),
            bridges: Vec::new(),
        }
    }

    /// Adds a channel with its own bus configuration and arbiter.
    /// Channels receive dense [`ChannelId`]s in the order added.
    ///
    /// The arbiter must be sized for the channel's *actors*: its local
    /// masters plus one port per bridge whose destination is this
    /// channel (in the order masters were added, then bridges).
    pub fn channel(mut self, config: BusConfig, arbiter: Box<dyn Arbiter>) -> Self {
        self.channels.push((config, arbiter));
        self
    }

    /// Adds a master homed on `channel`, driven by `source`. Masters
    /// receive dense global indices in the order added.
    pub fn master(
        mut self,
        name: impl Into<String>,
        channel: ChannelId,
        source: Box<dyn TrafficSource>,
    ) -> Self {
        self.masters.push((name.into(), channel.index(), source));
        self
    }

    /// Attaches a slave to `channel`. Slave ids are global: a
    /// transaction addressed to this slave from any channel is routed
    /// here.
    pub fn slave(mut self, slave: Slave, channel: ChannelId) -> Self {
        self.slaves.push((slave, channel.index()));
        self
    }

    /// Adds a directed bridge carrying `from` → `to` traffic, buffering
    /// at most `capacity` in-flight transactions (store-and-forward).
    /// For bidirectional links add two bridges.
    pub fn bridge(mut self, from: ChannelId, to: ChannelId, capacity: usize) -> Self {
        self.bridges.push((from.index(), to.index(), capacity.max(1)));
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no channels or masters, a
    /// master/slave/bridge references an unknown channel, two slaves
    /// share an id, a channel ends up with more actors than
    /// [`MAX_MASTERS`], or some master's channel cannot reach some
    /// slave's channel through the bridges.
    pub fn build(self) -> Result<MultiChannelSystem, BuildSystemError> {
        let n_channels = self.channels.len();
        if n_channels == 0 || self.masters.is_empty() {
            return Err(BuildSystemError::NoMasters);
        }
        let check = |c: usize| -> Result<(), BuildSystemError> {
            if c >= n_channels {
                Err(BuildSystemError::InvalidConfig(format!(
                    "channel {c} does not exist (only {n_channels} channels)"
                )))
            } else {
                Ok(())
            }
        };
        for (_, c, _) in &self.masters {
            check(*c)?;
        }
        for (_, c) in &self.slaves {
            check(*c)?;
        }
        for &(from, to, _) in &self.bridges {
            check(from)?;
            check(to)?;
            if from == to {
                return Err(BuildSystemError::InvalidConfig(
                    "a bridge cannot connect a channel to itself".into(),
                ));
            }
        }
        for (config, _) in &self.channels {
            config.validate().map_err(BuildSystemError::InvalidConfig)?;
        }

        // Slave id → channel map; ids must be unique across the system.
        let mut slave_channel: Vec<Option<usize>> = Vec::new();
        for (slave, channel) in &self.slaves {
            let idx = slave.id().index();
            if slave_channel.len() <= idx {
                slave_channel.resize(idx + 1, None);
            }
            if slave_channel[idx].is_some() {
                return Err(BuildSystemError::InvalidConfig(format!(
                    "slave id {idx} attached twice"
                )));
            }
            slave_channel[idx] = Some(*channel);
        }

        // next_bridge[a][b] = bridge index of the first hop a → b.
        let next_bridge = route_table(n_channels, &self.bridges);
        let master_channels: Vec<usize> = self.masters.iter().map(|(_, c, _)| *c).collect();
        for &mc in &master_channels {
            for sc in slave_channel.iter().flatten() {
                if mc != *sc && next_bridge[mc][*sc].is_none() {
                    return Err(BuildSystemError::InvalidConfig(format!(
                        "no bridge path from channel {mc} to channel {sc}"
                    )));
                }
            }
        }

        // Assemble channels: local master ports first, then bridge ports.
        let mut channels: Vec<Channel> = self
            .channels
            .into_iter()
            .map(|(config, arbiter)| Channel {
                bus: Bus::new(config),
                arbiter,
                ports: Vec::new(),
                actors: Vec::new(),
                slaves: Vec::new(),
                stats: BusStats::new(0),
                trace: BusTrace::disabled(),
            })
            .collect();
        for (slave, channel) in self.slaves {
            channels[channel].slaves.push(slave);
        }
        let mut sources = Vec::new();
        let mut master_actor = Vec::new();
        let mut names = Vec::new();
        for (global, (name, channel, source)) in self.masters.into_iter().enumerate() {
            let ch = &mut channels[channel];
            let local = ch.ports.len();
            ch.ports.push(MasterPort::new(MasterId::new(local), name.clone()));
            ch.actors.push(Actor::Master(global));
            master_actor.push((channel, local));
            sources.push(source);
            names.push(name);
        }
        let mut bridges = Vec::new();
        for (b, &(from, to, capacity)) in self.bridges.iter().enumerate() {
            let ch = &mut channels[to];
            let local = ch.ports.len();
            ch.ports.push(MasterPort::new(MasterId::new(local), format!("bridge{from}->{to}")));
            ch.actors.push(Actor::Bridge(b));
            bridges.push(BridgeState { to, capacity, actor: local, origins: VecDeque::new() });
        }
        for channel in &mut channels {
            if channel.ports.len() > MAX_MASTERS {
                return Err(BuildSystemError::TooManyMasters {
                    got: channel.ports.len(),
                    max: MAX_MASTERS,
                });
            }
            if channel.ports.is_empty() {
                // A channel may legitimately host only slaves; give it an
                // empty stats block anyway.
            }
            channel.stats = BusStats::new(channel.ports.len().max(1));
        }

        let n_masters = sources.len();
        Ok(MultiChannelSystem {
            channels,
            bridges,
            sources,
            master_actor,
            master_names: names,
            slave_channel,
            next_bridge,
            end_to_end: vec![MasterStats::default(); n_masters],
            now: Cycle::ZERO,
        })
    }
}

/// BFS all-pairs first-hop routing over the directed bridge graph.
fn route_table(n: usize, bridges: &[(usize, usize, usize)]) -> Vec<Vec<Option<usize>>> {
    let mut table = vec![vec![None; n]; n];
    for start in 0..n {
        // BFS from `start`; record the first bridge taken out of `start`
        // on the shortest path to every reachable channel.
        let mut first_hop: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[start] = true;
        let mut frontier = VecDeque::new();
        frontier.push_back(start);
        while let Some(c) = frontier.pop_front() {
            for (b, &(from, to, _)) in bridges.iter().enumerate() {
                if from == c && !visited[to] {
                    visited[to] = true;
                    first_hop[to] = if c == start { Some(b) } else { first_hop[c] };
                    frontier.push_back(to);
                }
            }
        }
        table[start] = first_hop;
    }
    table
}

/// A system of several shared channels connected by bridges, each with
/// its own arbiter — e.g. one lottery manager per channel, as the paper
/// prescribes.
pub struct MultiChannelSystem {
    channels: Vec<Channel>,
    bridges: Vec<BridgeState>,
    sources: Vec<Box<dyn TrafficSource>>,
    /// Global master index → (channel, local port index).
    master_actor: Vec<(usize, usize)>,
    master_names: Vec<String>,
    /// Slave id index → owning channel.
    slave_channel: Vec<Option<usize>>,
    /// `next_bridge[a][b]` = first-hop bridge from channel a to b.
    next_bridge: Vec<Vec<Option<usize>>>,
    /// End-to-end statistics per global master (latency measured from
    /// issue to final-slave delivery, across all hops).
    end_to_end: Vec<MasterStats>,
    now: Cycle,
}

impl std::fmt::Debug for MultiChannelSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiChannelSystem")
            .field("channels", &self.channels.len())
            .field("bridges", &self.bridges.len())
            .field("masters", &self.master_names)
            .field("now", &self.now)
            .finish()
    }
}

impl MultiChannelSystem {
    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of (original) masters.
    pub fn masters(&self) -> usize {
        self.master_actor.len()
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Per-channel bus statistics (leg transfers, utilization).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_stats(&self, channel: ChannelId) -> &BusStats {
        &self.channels[channel.index()].stats
    }

    /// End-to-end statistics for global master `master`: transaction
    /// latency is measured from issue until the last word reaches the
    /// final slave, across every hop.
    ///
    /// # Panics
    ///
    /// Panics if `master` is out of range.
    pub fn master_stats(&self, master: usize) -> &MasterStats {
        &self.end_to_end[master]
    }

    /// Transactions currently buffered in bridge `bridge`.
    ///
    /// # Panics
    ///
    /// Panics if `bridge` is out of range.
    pub fn bridge_occupancy(&self, bridge: usize) -> usize {
        let b = &self.bridges[bridge];
        self.channels[b.to].ports[b.actor].backlog_transactions()
    }

    fn channel_of_slave(&self, slave: SlaveId) -> usize {
        self.slave_channel
            .get(slave.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("transaction addresses unknown slave {slave}"))
    }

    /// Simulates one cycle of every channel.
    pub fn step(&mut self) {
        let now = self.now;
        // 1. New traffic enters the home-channel ports.
        for (global, source) in self.sources.iter_mut().enumerate() {
            if let Some(txn) = source.poll(now) {
                let (channel, local) = self.master_actor[global];
                self.channels[channel].ports[local].enqueue(txn);
            }
        }
        // 2. Each channel arbitrates and transfers independently.
        // Completed legs are routed only after every channel has
        // stepped, so a forwarded transaction becomes visible downstream
        // in the next cycle regardless of channel ordering.
        let mut completions: Vec<(usize, usize, crate::master::Completion)> = Vec::new();
        for c in 0..self.channels.len() {
            // Back-pressure: actors whose next hop bridge is full are
            // masked out of this cycle's request map.
            let mut blocked = 0u32;
            for (local, port) in self.channels[c].ports.iter().enumerate() {
                if let Some(slave) = port.head_slave() {
                    let dest = self.channel_of_slave(slave);
                    if dest != c {
                        let bridge = self.next_bridge[c][dest]
                            .unwrap_or_else(|| panic!("no route from ch{c} to ch{dest}"));
                        let b = &self.bridges[bridge];
                        if self.channels[b.to].ports[b.actor].backlog_transactions() >= b.capacity {
                            blocked |= 1 << local;
                        }
                    }
                }
            }
            let channel = &mut self.channels[c];
            let completed = channel.bus.step(
                &mut *channel.arbiter,
                &mut channel.ports,
                &channel.slaves,
                now,
                blocked,
                &mut channel.stats,
                &mut channel.trace,
            );
            channel.stats.record_cycle();
            if let Some((local, completion)) = completed {
                completions.push((c, local.index(), completion));
            }
        }
        // 3. Route the completed legs.
        for (c, local, completion) in completions {
            let actor = self.channels[c].actors[local];
            let origin = match actor {
                Actor::Master(m) => m,
                Actor::Bridge(b) => {
                    self.bridges[b].origins.pop_front().expect("bridge completion has an origin")
                }
            };
            let txn = completion.txn;
            let dest = self.channel_of_slave(txn.slave());
            if dest == c {
                // Final delivery: end-to-end latency from the original
                // issue stamp. The wait component is per-leg, so it is
                // not meaningful end to end and is recorded as zero.
                self.end_to_end[origin].words += u64::from(txn.words());
                self.end_to_end[origin].record_transaction(txn.words(), completion.latency(), 0);
            } else {
                // Store-and-forward into the next bridge, preserving the
                // original issue stamp for end-to-end accounting.
                let bridge = self.next_bridge[c][dest].expect("validated at build");
                let b = &mut self.bridges[bridge];
                b.origins.push_back(origin);
                let to = b.to;
                let actor = b.actor;
                self.channels[to].ports[actor].enqueue(Transaction::new(
                    txn.slave(),
                    txn.words(),
                    txn.issued_at(),
                ));
            }
        }
        self.now += 1;
    }

    /// Simulates `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FixedOrderArbiter;

    struct Script(VecDeque<Transaction>);
    impl TrafficSource for Script {
        fn poll(&mut self, now: Cycle) -> Option<Transaction> {
            if self.0.front()?.issued_at() <= now {
                self.0.pop_front()
            } else {
                None
            }
        }
    }

    fn script(entries: &[(u64, usize, u32)]) -> Box<dyn TrafficSource> {
        Box::new(Script(
            entries
                .iter()
                .map(|&(cycle, slave, words)| {
                    Transaction::new(SlaveId::new(slave), words, Cycle::new(cycle))
                })
                .collect(),
        ))
    }

    fn two_channel_system(entries: &[(u64, usize, u32)], capacity: usize) -> MultiChannelSystem {
        MultiChannelBuilder::new()
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .master("cpu", ChannelId::new(0), script(entries))
            .slave(Slave::new(SlaveId::new(0), "local-mem"), ChannelId::new(0))
            .slave(Slave::new(SlaveId::new(1), "remote-mem"), ChannelId::new(1))
            .bridge(ChannelId::new(0), ChannelId::new(1), capacity)
            .build()
            .expect("valid topology")
    }

    #[test]
    fn local_transaction_never_crosses_the_bridge() {
        let mut system = two_channel_system(&[(0, 0, 4)], 4);
        system.run(16);
        assert_eq!(system.master_stats(0).transactions, 1);
        assert_eq!(system.master_stats(0).total_latency, 4);
        assert_eq!(system.channel_stats(ChannelId::new(1)).busy_cycles, 0);
    }

    #[test]
    fn remote_transaction_pays_for_both_hops() {
        let mut system = two_channel_system(&[(0, 1, 4)], 4);
        system.run(32);
        let stats = system.master_stats(0);
        assert_eq!(stats.transactions, 1);
        // Channel 0 leg: cycles 0..4. The bridge forwards after the last
        // word; channel 1 leg takes 4 more cycles. End-to-end latency is
        // therefore at least 8 cycles.
        assert!(stats.total_latency >= 8, "latency {}", stats.total_latency);
        assert_eq!(system.channel_stats(ChannelId::new(0)).busy_cycles, 4);
        assert_eq!(system.channel_stats(ChannelId::new(1)).busy_cycles, 4);
    }

    #[test]
    fn bridge_capacity_applies_back_pressure() {
        // Many remote transactions, bridge of capacity 1: upstream must
        // stall until the bridge drains, but everything still arrives.
        let entries: Vec<(u64, usize, u32)> = (0..8).map(|k| (k, 1usize, 8u32)).collect();
        let mut system = two_channel_system(&entries, 1);
        system.run(400);
        assert_eq!(system.master_stats(0).transactions, 8);
        assert_eq!(system.master_stats(0).completed_words, 64);
        assert_eq!(system.bridge_occupancy(0), 0, "bridge drains");
    }

    #[test]
    fn unreachable_slave_is_a_build_error() {
        let err = MultiChannelBuilder::new()
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .master("cpu", ChannelId::new(0), script(&[]))
            .slave(Slave::new(SlaveId::new(0), "mem"), ChannelId::new(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildSystemError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn duplicate_slave_ids_rejected() {
        let err = MultiChannelBuilder::new()
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .master("cpu", ChannelId::new(0), script(&[]))
            .slave(Slave::new(SlaveId::new(0), "a"), ChannelId::new(0))
            .slave(Slave::new(SlaveId::new(0), "b"), ChannelId::new(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildSystemError::InvalidConfig(_)));
    }

    #[test]
    fn self_bridge_rejected() {
        let err = MultiChannelBuilder::new()
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .master("cpu", ChannelId::new(0), script(&[]))
            .bridge(ChannelId::new(0), ChannelId::new(0), 2)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildSystemError::InvalidConfig(_)));
    }

    #[test]
    fn multi_hop_routing_works() {
        // Chain of three channels: 0 → 1 → 2.
        let mut system = MultiChannelBuilder::new()
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .master("cpu", ChannelId::new(0), script(&[(0, 0, 3)]))
            .slave(Slave::new(SlaveId::new(0), "far-mem"), ChannelId::new(2))
            .bridge(ChannelId::new(0), ChannelId::new(1), 2)
            .bridge(ChannelId::new(1), ChannelId::new(2), 2)
            .build()
            .expect("valid topology");
        system.run(64);
        let stats = system.master_stats(0);
        assert_eq!(stats.transactions, 1);
        // Three legs of 3 words each.
        assert!(stats.total_latency >= 9, "latency {}", stats.total_latency);
        for c in 0..3 {
            assert_eq!(system.channel_stats(ChannelId::new(c)).busy_cycles, 3, "channel {c}");
        }
    }
}
