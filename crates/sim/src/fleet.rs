//! Batched lockstep fleet execution over structure-of-arrays state.
//!
//! A [`Fleet`] advances N *independent* bus systems together. Lanes never
//! interact — lockstep is purely a performance structure: all mutable
//! per-lane state lives in contiguous arrays (master ports, sources and
//! poll horizons flattened lane-major with an offset table; the bus
//! transfer state decomposed into parallel `Vec<u32>` owner/stall/burst
//! counters; arbiters, statistics and traces as dense per-lane vectors),
//! so sweeping a fleet touches memory linearly instead of pointer-chasing
//! N heap-scattered [`System`]s.
//!
//! ## Exactness contract
//!
//! Every lane is **byte-identical** to running the same configuration
//! through the scalar [`System`] under the default cycle kernel: the
//! statistics, trace events, metrics time-series, port states and source
//! states all match exactly. This holds because the fleet only ever does
//! three things, each individually exact:
//!
//! 1. **Per-cycle stepping** (`step_lane` internally) replicates the
//!    scalar step and the fault-free arms of the bus engine
//!    statement for statement over the SoA state.
//! 2. **Idle skipping** replicates the fast-forward kernel's idle jump
//!    (trace idle spans, arbiter decision-state advance, cycle counters,
//!    metrics window closes), which PR 4's differential harness proved
//!    cycle-exact.
//! 3. **Tenure batching** replays the interior of a bus tenure
//!    arithmetically, like the TLM kernel — but unlike TLM it is only
//!    entered when every elided poll is a *provable no-op*: the source
//!    must declare [`TrafficSource::pure_while_backlogged`] and its
//!    port's backlog must be nonempty for the whole batch. Sources that
//!    cannot make that promise bound the batch (future horizons) or
//!    force a per-cycle step (due polls), never an approximation.
//!    Batching is skipped entirely on lanes with windowed metrics, whose
//!    gauges sample every busy cycle boundary (mirroring the scalar
//!    kernel's `tenure_skips_allowed`).
//!
//! Point 3 is what makes fleets fast at saturation, where the scalar
//! cycle kernel pays the full per-cycle cost: a saturated 8-word tenure
//! collapses into one arbitration plus one arithmetic batch.
//!
//! Fault injection, retry policies, watchdog timeouts and streaming
//! trace sinks are deliberately *not* supported on fleet lanes — their
//! per-cycle machinery defeats batching. Callers with faulted
//! configurations keep using the scalar [`System`] (the scenario fleet
//! runner falls back automatically).
//!
//! ## When jobs beat lanes
//!
//! The PR-2 pool and the fleet compose: a fleet is single-threaded, so a
//! sweep can shard its lanes across pool jobs. For *low-utilization*
//! workloads the scalar fast-forward kernel already skips almost every
//! cycle in O(1), leaving little for lane batching to win; fleets pay
//! off when lanes are busy (saturated sweeps, search short-lists) or
//! when the workload is many small same-shape systems whose per-job
//! spawn overhead dominates.
//!
//! [`System`]: crate::System
//! [`TrafficSource::pure_while_backlogged`]: crate::TrafficSource::pure_while_backlogged

use crate::arbiter::{Arbiter, IntoArbiter, SoaKernel};
use crate::config::BusConfig;
use crate::cycle::Cycle;
use crate::error::BuildSystemError;
use crate::fastforward::fold_horizon;
use crate::ids::MasterId;
use crate::master::{Completion, MasterPort};
use crate::metrics::BusMetrics;
use crate::request::{RequestMap, MAX_MASTERS};
use crate::slave::Slave;
use crate::stats::BusStats;
use crate::system::{IntoSource, TrafficSource};
use crate::trace::{BusTrace, TraceEvent};

/// Lockstep chunk length: lanes are advanced in windows of this many
/// cycles so the whole fleet stays within one chunk of simulated time.
/// Tenures and idle spans are far shorter than this in practice, so the
/// cap never truncates a batch that matters.
const CHUNK: u64 = 1024;

/// Builder for one fleet lane — the supported subset of
/// [`crate::SystemBuilder`]: bus config, named masters with sources,
/// slaves, an arbiter, optional in-memory tracing and windowed metrics.
///
/// Fault plans, retry policies, watchdog timeouts, streaming trace sinks
/// and phase profiling are not available on lanes (see the module docs);
/// configurations needing them run on the scalar [`System`].
///
/// [`System`]: crate::System
#[derive(Debug)]
pub struct LaneBuilder<A = Box<dyn Arbiter>, S = Box<dyn TrafficSource>> {
    config: BusConfig,
    names: Vec<String>,
    sources: Vec<S>,
    slaves: Vec<Slave>,
    arbiter: Option<A>,
    trace_capacity: usize,
    metrics_window: Option<u64>,
}

impl<A: Arbiter, S: TrafficSource> LaneBuilder<A, S> {
    /// Starts building a lane around a bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        LaneBuilder {
            config,
            names: Vec::new(),
            sources: Vec::new(),
            slaves: Vec::new(),
            arbiter: None,
            trace_capacity: 0,
            metrics_window: None,
        }
    }

    /// Adds a master named `name` driven by `source`; dense
    /// [`MasterId`]s are assigned in insertion order, exactly like
    /// [`crate::SystemBuilder::master`].
    pub fn master(mut self, name: impl Into<String>, source: impl IntoSource<S>) -> Self {
        self.names.push(name.into());
        self.sources.push(source.into_source());
        self
    }

    /// Registers a slave (only needed for nonzero wait states).
    pub fn slave(mut self, slave: Slave) -> Self {
        self.slaves.push(slave);
        self
    }

    /// Sets the arbitration protocol.
    pub fn arbiter(mut self, arbiter: impl IntoArbiter<A>) -> Self {
        self.arbiter = Some(arbiter.into_arbiter());
        self
    }

    /// Enables in-memory bus tracing with at most `capacity` buffered
    /// events, exactly like [`crate::SystemBuilder::trace_capacity`].
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables the windowed metrics registry, exactly like
    /// [`crate::SystemBuilder::metrics_window`]. Lanes with metrics stay
    /// exact but forgo tenure batching (gauges sample every busy cycle
    /// boundary), so they advance at fast-forward-kernel speed.
    pub fn metrics_window(mut self, window: u64) -> Self {
        self.metrics_window = Some(window);
        self
    }
}

/// A lane failed to validate while building a [`Fleet`].
#[derive(Debug, PartialEq, Eq)]
pub struct FleetBuildError {
    /// Index of the offending lane in build order.
    pub lane: usize,
    /// The underlying builder error, identical to what
    /// [`crate::SystemBuilder::build`] would report.
    pub error: BuildSystemError,
}

impl std::fmt::Display for FleetBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet lane {}: {}", self.lane, self.error)
    }
}

impl std::error::Error for FleetBuildError {}

/// N independent bus systems advancing in lockstep over
/// structure-of-arrays state. See the module docs for the layout and
/// the exactness contract.
pub struct Fleet<A = Box<dyn Arbiter>, S = Box<dyn TrafficSource>> {
    /// Lane boundaries into the flattened per-master arrays:
    /// lane `l` owns indices `offsets[l]..offsets[l + 1]`.
    offsets: Vec<usize>,
    /// All master ports, lane-major.
    ports: Vec<MasterPort>,
    /// All traffic sources, lane-major (parallel to `ports`).
    sources: Vec<S>,
    /// Cached per-source poll horizons (parallel to `ports`), the fleet
    /// twin of `System::poll_horizon`.
    poll_horizon: Vec<Cycle>,
    /// Cached [`TrafficSource::pure_while_backlogged`] per source, so
    /// the batch legality scan costs one load instead of a dispatch.
    pure_backlog: Vec<bool>,
    /// Lane boundaries into the flattened slave table.
    slave_offsets: Vec<usize>,
    /// All registered slaves, lane-major.
    slaves: Vec<Slave>,
    /// Per-lane bus configuration.
    configs: Vec<BusConfig>,
    /// Decomposed bus transfer state, one element per lane: the master
    /// index owning the tenure in flight (meaningful while busy),
    owner: Vec<u32>,
    /// remaining setup-stall cycles (`Stalled` when nonzero),
    stall_left: Vec<u32>,
    /// the burst length armed behind the stall,
    stall_words: Vec<u32>,
    /// and remaining burst words (`Bursting` when nonzero with no
    /// stall). A lane is idle iff `stall_left == 0 && words_left == 0`.
    words_left: Vec<u32>,
    /// Per-lane arbiters, contiguous. A lowered lane's scalar arbiter
    /// is *stale* while its SoA kernel slot is live; [`Fleet::arbiter`]
    /// and [`Fleet::arbiter_mut`] write the kernel state back before
    /// exposing it.
    arbiters: Vec<A>,
    /// Cross-lane SoA decision kernels, one per lowered same-protocol
    /// group (see [`Arbiter::lower_group`]).
    kernels: Vec<Box<dyn SoaKernel>>,
    /// Per-lane kernel membership: `Some((kernel, slot))` routes the
    /// lane's arbitration through `kernels[kernel]`, `None` keeps the
    /// scalar arbiter (heterogeneous packs, never-lowered protocols,
    /// lanes dissolved by [`Fleet::arbiter_mut`]).
    lowered: Vec<Option<(u32, u32)>>,
    /// Whether the lane may take the fused arbitrate-plus-batch fast
    /// path at all: tracing off and no metrics registry (both sample
    /// per-cycle detail the fused path elides).
    fast_ok: Vec<bool>,
    /// Whether every possible grant on this lane has a zero setup
    /// stall (no arbitration overhead, no wait states anywhere) — a
    /// precondition of the arithmetic TDMA wheel walk.
    zero_stall: Vec<bool>,
    /// Per-lane statistics.
    stats: Vec<BusStats>,
    /// Per-lane traces (disabled unless a capacity was set).
    traces: Vec<BusTrace>,
    /// Per-lane windowed metrics registries.
    metrics: Vec<Option<BusMetrics>>,
    /// Per-lane arbiter failover counts at the last statistics reset.
    failover_baseline: Vec<u64>,
    /// Per-lane simulation time (the next cycle to simulate).
    now: Vec<Cycle>,
    /// Shared arbitration scratch map, rebuilt in place per idle cycle.
    scratch: RequestMap,
    /// Reusable per-lane target buffer for [`Fleet::run`], kept on the
    /// struct so steady-state runs stay allocation-free.
    targets: Vec<Cycle>,
}

impl<A: Arbiter, S: TrafficSource> std::fmt::Debug for Fleet<A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("lanes", &self.len())
            .field("masters", &self.ports.len())
            .finish()
    }
}

impl<A: Arbiter, S: TrafficSource> Fleet<A, S> {
    /// Builds a fleet from per-lane builders. Lane indices follow build
    /// order. An empty fleet is valid and inert.
    ///
    /// # Errors
    ///
    /// Returns the first lane that fails the same validation
    /// [`crate::SystemBuilder::build`] applies (no masters, too many
    /// masters, no arbiter, invalid bus config or metrics window).
    pub fn build(lanes: Vec<LaneBuilder<A, S>>) -> Result<Self, FleetBuildError> {
        let mut fleet = Fleet {
            offsets: Vec::with_capacity(lanes.len() + 1),
            ports: Vec::new(),
            sources: Vec::new(),
            poll_horizon: Vec::new(),
            pure_backlog: Vec::new(),
            slave_offsets: Vec::with_capacity(lanes.len() + 1),
            slaves: Vec::new(),
            configs: Vec::with_capacity(lanes.len()),
            owner: vec![0; lanes.len()],
            stall_left: vec![0; lanes.len()],
            stall_words: vec![0; lanes.len()],
            words_left: vec![0; lanes.len()],
            arbiters: Vec::with_capacity(lanes.len()),
            kernels: Vec::new(),
            lowered: vec![None; lanes.len()],
            fast_ok: Vec::with_capacity(lanes.len()),
            zero_stall: Vec::with_capacity(lanes.len()),
            stats: Vec::with_capacity(lanes.len()),
            traces: Vec::with_capacity(lanes.len()),
            metrics: Vec::with_capacity(lanes.len()),
            failover_baseline: vec![0; lanes.len()],
            now: vec![Cycle::ZERO; lanes.len()],
            scratch: RequestMap::new(1),
            targets: Vec::with_capacity(lanes.len()),
        };
        fleet.offsets.push(0);
        fleet.slave_offsets.push(0);
        for (lane, spec) in lanes.into_iter().enumerate() {
            let fail = |error| FleetBuildError { lane, error };
            if spec.names.is_empty() {
                return Err(fail(BuildSystemError::NoMasters));
            }
            if spec.metrics_window == Some(0) {
                return Err(fail(BuildSystemError::InvalidMetricsWindow(0)));
            }
            if spec.names.len() > MAX_MASTERS {
                return Err(fail(BuildSystemError::TooManyMasters {
                    got: spec.names.len(),
                    max: MAX_MASTERS,
                }));
            }
            spec.config.validate().map_err(|e| fail(BuildSystemError::InvalidConfig(e)))?;
            let arbiter = spec.arbiter.ok_or_else(|| fail(BuildSystemError::NoArbiter))?;
            let n = spec.names.len();
            for (i, name) in spec.names.into_iter().enumerate() {
                fleet.ports.push(MasterPort::new(MasterId::new(i), name));
            }
            for source in spec.sources {
                fleet.pure_backlog.push(source.pure_while_backlogged());
                fleet.sources.push(source);
                fleet.poll_horizon.push(Cycle::ZERO);
            }
            fleet.offsets.push(fleet.ports.len());
            fleet.zero_stall.push(
                spec.config.arbitration_overhead == 0
                    && spec.config.slave_wait_states == 0
                    && spec.slaves.iter().all(|s| s.wait_states() == 0),
            );
            fleet.slaves.extend(spec.slaves);
            fleet.slave_offsets.push(fleet.slaves.len());
            fleet.configs.push(spec.config);
            fleet.arbiters.push(arbiter);
            fleet.fast_ok.push(spec.trace_capacity == 0 && spec.metrics_window.is_none());
            fleet.stats.push(BusStats::new(n));
            fleet.traces.push(if spec.trace_capacity > 0 {
                BusTrace::enabled(spec.trace_capacity)
            } else {
                BusTrace::disabled()
            });
            fleet.metrics.push(spec.metrics_window.map(|w| BusMetrics::new(w, n)));
        }
        fleet.lower_groups();
        Ok(fleet)
    }

    /// Detects same-protocol lane groups (by [`Arbiter::soa_signature`])
    /// and lowers each group into one shared SoA decision kernel.
    /// Singleton groups lower too — they gain no table sharing, but
    /// they do gain the kernels' batch machinery (the TDMA arithmetic
    /// wheel walk in particular). Lanes whose protocol declines to
    /// lower keep the scalar path.
    fn lower_groups(&mut self) {
        let mut groups: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (lane, arbiter) in self.arbiters.iter().enumerate() {
            if let Some(signature) = arbiter.soa_signature() {
                groups.entry(signature).or_default().push(lane);
            }
        }
        for lanes in groups.values() {
            let peers: Vec<&A> = lanes.iter().map(|&l| &self.arbiters[l]).collect();
            if let Some(kernel) = A::lower_group(&peers) {
                let index = self.kernels.len() as u32;
                for (slot, &lane) in lanes.iter().enumerate() {
                    self.lowered[lane] = Some((index, slot as u32));
                }
                self.kernels.push(kernel);
            }
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the fleet has no lanes.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Number of masters on lane `lane`.
    pub fn masters(&self, lane: usize) -> usize {
        self.offsets[lane + 1] - self.offsets[lane]
    }

    /// Simulation time of lane `lane` (the next cycle to simulate).
    pub fn now(&self, lane: usize) -> Cycle {
        self.now[lane]
    }

    /// Accumulated statistics of lane `lane`.
    pub fn stats(&self, lane: usize) -> &BusStats {
        &self.stats[lane]
    }

    /// The recorded trace of lane `lane` (empty unless a capacity was
    /// set on its builder).
    pub fn trace(&self, lane: usize) -> &BusTrace {
        &self.traces[lane]
    }

    /// The metrics time-series of lane `lane`, or `None` when metrics
    /// were not enabled on its builder.
    pub fn metrics(&self, lane: usize) -> Option<&BusMetrics> {
        self.metrics[lane].as_ref()
    }

    /// The master ports of lane `lane`, in [`MasterId`] order.
    pub fn lane_ports(&self, lane: usize) -> &[MasterPort] {
        &self.ports[self.offsets[lane]..self.offsets[lane + 1]]
    }

    /// The master port `id` of lane `lane`.
    pub fn master(&self, lane: usize, id: MasterId) -> &MasterPort {
        &self.lane_ports(lane)[id.index()]
    }

    /// Copies a lowered lane's live kernel state back into its scalar
    /// arbiter, so external observers see exactly what scalar execution
    /// would have produced. No-op for scalar lanes.
    fn sync_lane_arbiter(&mut self, lane: usize) {
        if let Some((kernel, slot)) = self.lowered[lane] {
            let kernel = self.kernels[kernel as usize].as_ref();
            self.arbiters[lane].writeback_from(kernel, slot as usize);
        }
    }

    /// The arbiter of lane `lane`, for protocols with runtime knobs.
    ///
    /// Mutating the returned arbiter **dissolves** the lane's SoA
    /// kernel membership (after writing the kernel state back): the
    /// kernel's copy can no longer be trusted, so the lane reverts to
    /// the scalar path for the rest of the run. Lanes that were never
    /// lowered are unaffected.
    pub fn arbiter_mut(&mut self, lane: usize) -> &mut A {
        self.sync_lane_arbiter(lane);
        self.lowered[lane] = None;
        &mut self.arbiters[lane]
    }

    /// The arbiter of lane `lane`. Takes `&mut self` because a lowered
    /// lane's scalar arbiter is refreshed from its SoA kernel slot
    /// first (the lane stays lowered).
    pub fn arbiter(&mut self, lane: usize) -> &A {
        self.sync_lane_arbiter(lane);
        &self.arbiters[lane]
    }

    /// Number of lanes currently lowered into a grouped SoA decision
    /// kernel; the remaining lanes arbitrate through their scalar
    /// arbiter (heterogeneous packs, custom sources, dissolved lanes).
    pub fn lowered_lanes(&self) -> usize {
        self.lowered.iter().filter(|slot| slot.is_some()).count()
    }

    /// Number of grouped SoA decision kernels backing the lowered
    /// lanes (one per same-protocol group of two or more lanes).
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Closes partial metrics windows on every lane at its current
    /// cycle, mirroring [`crate::System::flush_metrics`].
    pub fn flush_metrics(&mut self) {
        for lane in 0..self.len() {
            let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
            if let Some(metrics) = self.metrics[lane].as_mut() {
                metrics.flush(self.now[lane], &self.stats[lane], &self.ports[lo..hi]);
            }
        }
    }

    /// Clears accumulated statistics on every lane, mirroring
    /// [`crate::System::reset_stats`].
    pub fn reset_stats(&mut self) {
        for lane in 0..self.len() {
            self.stats[lane] = BusStats::new(self.masters(lane));
            self.failover_baseline[lane] = self.arbiters[lane].failovers();
            if let Some(metrics) = self.metrics[lane].as_mut() {
                metrics.reset(self.now[lane]);
            }
        }
    }

    /// Advances every lane by `cycles` cycles in lockstep chunks.
    pub fn run(&mut self, cycles: u64) {
        let Some(&start) = self.now.iter().min() else {
            return;
        };
        // The target buffer lives on the struct (capacity reserved at
        // build) so steady-state runs make no heap allocations.
        let mut targets = std::mem::take(&mut self.targets);
        targets.clear();
        targets.extend(self.now.iter().map(|&n| n + cycles));
        let end = targets.iter().copied().max().unwrap_or(start);
        let mut chunk_end = start;
        while chunk_end < end {
            chunk_end = (chunk_end + CHUNK).min(end);
            for (lane, &lane_target) in targets.iter().enumerate() {
                let target = lane_target.min(chunk_end);
                self.advance_lane(lane, target);
            }
        }
        self.targets = targets;
    }

    /// Advances every lane whose clock is behind `target` up to exactly
    /// `target`, in lockstep chunks. Lanes already at or past `target`
    /// are untouched. This is the phase driver for packed scenario
    /// lanes, whose phase boundaries differ per lane.
    pub fn run_until(&mut self, target: Cycle) {
        let Some(&start) = self.now.iter().min() else {
            return;
        };
        let mut chunk_end = start;
        while chunk_end < target {
            chunk_end = (chunk_end + CHUNK).min(target);
            for lane in 0..self.len() {
                if self.now[lane] < chunk_end {
                    self.advance_lane(lane, chunk_end);
                }
            }
        }
    }

    /// Advances one lane to exactly `target` (no-op if its clock is
    /// already there or past). Lets drivers with per-lane schedules —
    /// scenario packs whose lanes end at different cycles — cap each
    /// lane at its own boundary while iterating boundaries in global
    /// order for lockstep locality.
    pub fn run_lane_until(&mut self, lane: usize, target: Cycle) {
        if self.now[lane] < target {
            self.advance_lane(lane, target);
        }
    }

    /// Runs `cycles` warm-up cycles on every lane and then discards the
    /// statistics, mirroring [`crate::System::warm_up`].
    pub fn warm_up(&mut self, cycles: u64) {
        self.run(cycles);
        self.reset_stats();
    }

    /// Whether lane `lane` has a tenure (or its setup stall) in flight.
    #[inline]
    fn lane_busy(&self, lane: usize) -> bool {
        self.stall_left[lane] > 0 || self.words_left[lane] > 0
    }

    /// Advances one lane to `target` using the three exact moves (step,
    /// idle skip, tenure batch); the fleet twin of the scalar kernel's
    /// run loop.
    fn advance_lane(&mut self, lane: usize, target: Cycle) {
        while self.now[lane] < target {
            let horizon = self.idle_horizon_lane(lane).min(target);
            if horizon > self.now[lane] {
                self.skip_lane_to(lane, horizon);
            } else if self.lane_busy(lane) {
                if !self.skip_tenure_lane(lane, target) {
                    self.step_lane(lane);
                }
            } else if !self.fast_arbitrate_lane(lane, target) {
                self.step_lane(lane);
            }
        }
    }

    /// The idle event horizon of lane `lane`; replicates
    /// [`crate::System::idle_horizon`] (fleet lanes never carry stall
    /// faults, so the plain port horizon always applies).
    fn idle_horizon_lane(&self, lane: usize) -> Cycle {
        let now = self.now[lane];
        if self.lane_busy(lane) {
            return now;
        }
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        let mut horizon = Cycle::NEVER;
        for port in &self.ports[lo..hi] {
            horizon = fold_horizon(horizon, port.next_event(now), now);
            if horizon == now {
                return now;
            }
        }
        for source in &self.sources[lo..hi] {
            horizon = fold_horizon(horizon, source.next_event(now), now);
            if horizon == now {
                return now;
            }
        }
        let arbiter_horizon = match self.lowered[lane] {
            Some((kernel, slot)) => self.kernels[kernel as usize].next_event_slot(slot as usize, now),
            None => self.arbiters[lane].next_event(now),
        };
        fold_horizon(horizon, arbiter_horizon, now)
    }

    /// Jumps lane `lane` from its current cycle to `target`, replicating
    /// the scalar kernel's idle skip accounting exactly.
    fn skip_lane_to(&mut self, lane: usize, target: Cycle) {
        let now = self.now[lane];
        let delta = target - now;
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        self.traces[lane].record_idle_span(now, delta);
        match self.lowered[lane] {
            Some((kernel, slot)) => self.kernels[kernel as usize].skip_idle_slot(slot as usize, delta),
            None => self.arbiters[lane].skip_idle(delta),
        }
        self.stats[lane].record_cycles(delta);
        self.stats[lane].failovers = self.arbiters[lane].failovers() - self.failover_baseline[lane];
        if let Some(metrics) = self.metrics[lane].as_mut() {
            metrics.skip_cycles(now, delta, &self.stats[lane], &self.ports[lo..hi]);
        }
        self.now[lane] = target;
    }

    /// Batches the interior of lane `lane`'s tenure in flight, exactly.
    ///
    /// Unlike the scalar TLM kernel's tenure skip — which *defers* due
    /// polls as a measured approximation — this batch only proceeds when
    /// every due poll is a provable no-op: the source declares
    /// [`TrafficSource::pure_while_backlogged`] and its port has a
    /// nonempty backlog, which persists for the whole batch (the owner's
    /// head transaction pops only in the bus phase of its completion
    /// cycle, after that cycle's polls; non-owners transfer nothing).
    /// Sources with true future horizons bound the batch instead, so
    /// their next poll happens on time. Lanes with windowed metrics
    /// never batch (their gauges sample every busy cycle boundary).
    ///
    /// Returns whether any cycles were consumed; `false` sends the
    /// caller to a per-cycle step.
    fn skip_tenure_lane(&mut self, lane: usize, end: Cycle) -> bool {
        if self.metrics[lane].is_some() {
            return false;
        }
        let now = self.now[lane];
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        let mut limit = end;
        for i in lo..hi {
            let cached = self.poll_horizon[i];
            if cached > now {
                // A true future horizon: nothing to poll before it, so
                // it bounds the batch and the source stays exact.
                limit = limit.min(cached);
                continue;
            }
            // A poll is due this cycle (and every batched cycle). It may
            // only be elided if it is a no-op by contract: pure while
            // backlogged, with a backlog that cannot drain mid-batch.
            if !(self.pure_backlog[i] && self.ports[i].backlog_transactions() > 0) {
                return false;
            }
        }
        if limit <= now {
            return false;
        }
        let consumed = self.batch_tenure(lane, now, limit - now);
        if consumed == 0 {
            return false;
        }
        self.stats[lane].record_cycles(consumed);
        self.stats[lane].failovers = self.arbiters[lane].failovers() - self.failover_baseline[lane];
        // Elided sources keep their (due) cached horizons: their
        // `next_event` is the identity while backlogged, so per-cycle
        // stepping would also leave them due at the new `now` — they are
        // re-polled at the next unskipped cycle either way.
        self.now[lane] = now + consumed;
        true
    }

    /// Replays up to `max_cycles` of lane `lane`'s in-flight tenure
    /// arithmetically over the SoA counters; the fleet twin of the bus
    /// engine's tenure skip, leaving counters, ports, statistics and
    /// trace exactly where per-cycle stepping would.
    fn batch_tenure(&mut self, lane: usize, now: Cycle, max_cycles: u64) -> u64 {
        let lo = self.offsets[lane];
        let master = MasterId::new(self.owner[lane] as usize);
        let mut consumed = 0u64;
        let stall_left = self.stall_left[lane];
        if stall_left > 0 {
            let pay = u64::from(stall_left).min(max_cycles) as u32;
            if pay > 0 {
                self.stats[lane].record_stall(pay);
                consumed += u64::from(pay);
                self.stall_left[lane] = stall_left - pay;
                if self.stall_left[lane] == 0 {
                    self.words_left[lane] = self.stall_words[lane];
                    self.stall_words[lane] = 0;
                }
            }
        }
        let words_left = self.words_left[lane];
        if self.stall_left[lane] == 0 && words_left > 0 {
            let burst = u64::from(words_left).min(max_cycles - consumed) as u32;
            if burst > 0 {
                let start = now + consumed;
                self.stats[lane].record_words(master, burst);
                self.traces[lane].record_word_span(start, burst, master);
                // A tenure never covers more words than its head
                // transaction has left (the grant clamps to
                // `pending_words`), so at most one completion can occur,
                // on the batch's final word.
                let last = start + (u64::from(burst) - 1);
                if let Some(done) = self.ports[lo + master.index()].transfer(burst, last) {
                    self.stats[lane].record_completion(master, &done);
                }
                consumed += u64::from(burst);
                self.words_left[lane] = words_left - burst;
            }
        }
        consumed
    }

    /// Fuses an idle lane's arbitration cycle with the tenure batch it
    /// starts, eliding the per-cycle poll/step machinery when every
    /// elided poll is a provable no-op (the same legality scan as
    /// [`Fleet::skip_tenure_lane`]). Exact because the elided pieces
    /// are exactly the pieces proven elidable there, the arbitration
    /// itself runs unchanged, and [`Fleet::batch_tenure`] replays the
    /// armed tenure — including the grant cycle's own stall payment or
    /// first word — with identical accounting. Lanes with tracing or
    /// metrics (which observe per-cycle detail) never take this path.
    ///
    /// Wheel-lowered lanes with every master pending divert into the
    /// arithmetic slot walk ([`Fleet::wheel_batch_lane`]) instead,
    /// covering many single-word TDMA tenures per call.
    ///
    /// Returns whether any cycles were consumed; `false` sends the
    /// caller to a per-cycle step.
    fn fast_arbitrate_lane(&mut self, lane: usize, end: Cycle) -> bool {
        if !self.fast_ok[lane] {
            return false;
        }
        let now = self.now[lane];
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        let mut limit = end;
        for i in lo..hi {
            let cached = self.poll_horizon[i];
            if cached > now {
                limit = limit.min(cached);
                continue;
            }
            if !(self.pure_backlog[i] && self.ports[i].backlog_transactions() > 0) {
                return false;
            }
        }
        if limit <= now {
            return false;
        }
        self.scratch.reset_for(hi - lo);
        let mut all_pending = true;
        for port in &self.ports[lo..hi] {
            if port.is_requesting() {
                self.scratch.set_pending(port.id(), port.pending_words());
            } else {
                all_pending = false;
            }
        }
        if all_pending && self.zero_stall[lane] {
            if let Some((kernel, slot)) = self.lowered[lane] {
                if self.kernels[kernel as usize].wheel_walk(slot as usize).is_some() {
                    return self.wheel_batch_lane(lane, now, limit);
                }
            }
        }
        // Serve tenures back to back until the legality window closes.
        // The scan above holds for every cycle in `[now, limit)`: bounded
        // sources never come due before `limit`, and elided due polls
        // stay no-ops as long as their backlog survives — which only the
        // granted master's completion can change, so only its entry is
        // re-validated (and its scratch slot refreshed) between tenures.
        // No other port changes state: elided polls enqueue nothing and
        // non-owners transfer nothing.
        let mut cursor = now;
        let mut consumed_total = 0u64;
        loop {
            if self.scratch.pending_count() >= 2 {
                self.stats[lane].record_contended_arbitration();
            }
            let decision = match self.lowered[lane] {
                Some((kernel, slot)) => {
                    self.kernels[kernel as usize].arbitrate_slot(slot as usize, &self.scratch, cursor)
                }
                None => self.arbiters[lane].arbitrate(&self.scratch, cursor),
            };
            let Some(grant) = decision else {
                // An idle decision consumes exactly one cycle; the elided
                // polls are no-ops and tracing is off on this path. Hand
                // the (rare) idle lane back to the horizon machinery.
                consumed_total += 1;
                cursor = cursor + 1;
                break;
            };
            debug_assert!(
                (self.scratch.bits() >> grant.master.index()) & 1 == 1,
                "arbiter `{}` granted idle master {}",
                self.arbiters[lane].name(),
                grant.master
            );
            debug_assert!(grant.max_words > 0, "arbiter granted zero words");
            let winner = grant.master;
            let port = &mut self.ports[lo + winner.index()];
            let words =
                grant.max_words.min(self.configs[lane].max_burst).min(port.pending_words());
            self.stats[lane].record_grant(winner);
            port.note_grant(cursor);
            // A zero-stall lane (no arbitration overhead, every slave at
            // zero wait states) makes the slave lookup dead: grant_stall
            // is zero for any wait-state value it could resolve.
            let stall = if self.zero_stall[lane] {
                0
            } else {
                let slave = port.head_slave().expect("pending master has head");
                let (slo, shi) = (self.slave_offsets[lane], self.slave_offsets[lane + 1]);
                let wait_states = self.slaves[slo..shi]
                    .iter()
                    .find(|s| s.id() == slave)
                    .map_or(self.configs[lane].slave_wait_states, Slave::wait_states);
                self.configs[lane].grant_stall(wait_states)
            };
            self.owner[lane] = winner.index() as u32;
            // Arm the whole tenure *including* the grant cycle's own
            // work: paying `stall` from `stall_left` records the same
            // stall cycles as the scalar's 1 + (stall - 1) split, and a
            // zero-stall grant's first word is just the first word of
            // the armed burst. A stall-free burst that fits the window
            // replays inline — `batch_tenure` with the stall arm and
            // the leftover-words round-trip folded away, and the trace
            // call elided because `fast_ok` proved tracing off.
            let consumed = if stall == 0 && u64::from(words) <= limit - cursor {
                self.stats[lane].record_words(winner, words);
                let last = cursor + (u64::from(words) - 1);
                if let Some(done) = self.ports[lo + winner.index()].transfer(words, last) {
                    self.stats[lane].record_completion(winner, &done);
                }
                u64::from(words)
            } else {
                if stall > 0 {
                    self.stall_left[lane] = stall;
                    self.stall_words[lane] = words;
                } else {
                    self.words_left[lane] = words;
                }
                self.batch_tenure(lane, cursor, limit - cursor)
            };
            debug_assert!(consumed > 0, "fused arbitration must consume cycles");
            consumed_total += consumed;
            cursor = cursor + consumed;
            if cursor >= limit || self.stall_left[lane] > 0 || self.words_left[lane] > 0 {
                // Window exhausted (possibly mid-tenure, which the busy
                // path resumes next window).
                break;
            }
            // The winner's completion may have drained the backlog that
            // proved its due poll elidable; anyone else is untouched. A
            // no-longer-elidable poll is simply *run* — exactly as the
            // stepped poll phase would at `cursor` — so back-to-back
            // tenures keep fusing across transaction refills.
            let wi = lo + winner.index();
            if self.poll_horizon[wi] <= cursor
                && !(self.pure_backlog[wi] && self.ports[wi].backlog_transactions() > 0)
            {
                let port = &mut self.ports[wi];
                let source = &mut self.sources[wi];
                if let Some(txn) = source.poll_with_backlog(cursor, port.backlog_transactions()) {
                    port.enqueue(txn);
                }
                self.poll_horizon[wi] = source.next_event(cursor + 1);
                // Further fusing needs the entry scan's proof for this
                // master: elidable no-op polls, or no poll due inside
                // the window (shrinking it to the fresh horizon).
                if !(self.pure_backlog[wi] && port.backlog_transactions() > 0) {
                    if self.poll_horizon[wi] > cursor {
                        limit = limit.min(self.poll_horizon[wi]);
                    } else {
                        break;
                    }
                }
            }
            let port = &self.ports[wi];
            if port.is_requesting() {
                self.scratch.set_pending(winner, port.pending_words());
            } else {
                self.scratch.clear_pending(winner);
            }
        }
        self.stats[lane].record_cycles(consumed_total);
        self.stats[lane].failovers = self.arbiters[lane].failovers() - self.failover_baseline[lane];
        self.now[lane] = cursor;
        true
    }

    /// Replays a window of an all-pending TDMA lane arithmetically: with
    /// every master pending, the grant sequence from the current wheel
    /// position is exactly the wheel sequence (the owner is always
    /// pending, so slot reclaim never fires and the round-robin reclaim
    /// pointer is untouched), every grant moves one word with zero
    /// setup stall, and every cycle is busy and contended. The walk is
    /// cut at the first head-transaction completion, so at most one
    /// completion occurs, at the batch's final cycle — identical to the
    /// per-cycle path's bookkeeping.
    fn wheel_batch_lane(&mut self, lane: usize, now: Cycle, limit: Cycle) -> bool {
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        let masters = hi - lo;
        let (kernel, slot) = self.lowered[lane].expect("wheel lanes are lowered");
        let (kernel, slot) = (kernel as usize, slot as usize);
        let walk = self.kernels[kernel].wheel_walk(slot).expect("wheel kernel");
        // The batch ends at the window bound or one cycle past the
        // earliest completion, whichever is sooner. Masters owning no
        // wheel slots are never granted while everyone is pending (the
        // paths that could reach them all go through reclaim), so they
        // transfer nothing and impose no bound — exactly like scalar.
        let mut span = limit - now;
        for m in 0..masters {
            let remaining = u64::from(self.ports[lo + m].pending_words());
            if let Some(offset) = walk.occurrence_offset(m, remaining) {
                span = span.min(offset + 1);
            }
        }
        debug_assert!(span > 0);
        for m in 0..masters {
            let granted = walk.count_in(m, span);
            if granted == 0 {
                continue;
            }
            let id = MasterId::new(m);
            // `granted` never exceeds the head's remaining words: the
            // span is cut at the earliest completion, so it fits u32.
            let first = now + walk.occurrence_offset(m, 1).expect("granted > 0");
            let last = now + walk.occurrence_offset(m, granted).expect("granted > 0");
            self.stats[lane].record_grants(id, granted);
            self.stats[lane].record_words(id, granted as u32);
            let port = &mut self.ports[lo + m];
            port.note_grant(first);
            if let Some(done) = port.transfer(granted as u32, last) {
                self.stats[lane].record_completion(id, &done);
            }
        }
        if masters >= 2 {
            self.stats[lane].record_contended_arbitrations(span);
        }
        self.kernels[kernel].advance_wheel(slot, span);
        self.stats[lane].record_cycles(span);
        self.stats[lane].failovers = self.arbiters[lane].failovers() - self.failover_baseline[lane];
        self.now[lane] = now + span;
        true
    }

    /// Simulates one cycle of lane `lane`, replicating
    /// [`crate::System::step`] exactly (poll phase with cached horizons,
    /// bus phase, accounting phase).
    fn step_lane(&mut self, lane: usize) {
        let now = self.now[lane];
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        {
            let ports = &mut self.ports[lo..hi];
            let sources = &mut self.sources[lo..hi];
            let horizons = &mut self.poll_horizon[lo..hi];
            for ((port, source), horizon) in
                ports.iter_mut().zip(sources.iter_mut()).zip(horizons.iter_mut())
            {
                if *horizon > now {
                    continue;
                }
                if let Some(txn) = source.poll_with_backlog(now, port.backlog_transactions()) {
                    port.enqueue(txn);
                }
                *horizon = source.next_event(now + 1);
            }
        }
        let completed = self.bus_step(lane, now);
        self.stats[lane].record_cycle();
        self.stats[lane].failovers = self.arbiters[lane].failovers() - self.failover_baseline[lane];
        if let Some(metrics) = self.metrics[lane].as_mut() {
            if let Some((_, done)) = completed {
                metrics.note_completion(done.latency());
            }
            metrics.end_cycle(now, &self.stats[lane], &self.ports[lo..hi]);
        }
        self.now[lane] = now + 1;
    }

    /// One bus cycle of lane `lane` over the SoA transfer state,
    /// replicating the fault-free arms of the bus engine exactly.
    fn bus_step(&mut self, lane: usize, now: Cycle) -> Option<(MasterId, Completion)> {
        // Stalled: pay one setup cycle.
        let stall_left = self.stall_left[lane];
        if stall_left > 0 {
            self.stats[lane].record_stall(1);
            self.stall_left[lane] = stall_left - 1;
            if self.stall_left[lane] == 0 {
                self.words_left[lane] = self.stall_words[lane];
                self.stall_words[lane] = 0;
            }
            return None;
        }
        // Bursting: move one word.
        let words_left = self.words_left[lane];
        if words_left > 0 {
            let master = MasterId::new(self.owner[lane] as usize);
            let done = self.transfer_word(lane, master, now);
            self.words_left[lane] = words_left - 1;
            return done;
        }
        // Idle: arbitrate.
        let (lo, hi) = (self.offsets[lane], self.offsets[lane + 1]);
        self.scratch.reset_for(hi - lo);
        for port in &self.ports[lo..hi] {
            if port.is_requesting() {
                self.scratch.set_pending(port.id(), port.pending_words());
            }
        }
        if self.scratch.pending_count() >= 2 {
            self.stats[lane].record_contended_arbitration();
        }
        let decision = match self.lowered[lane] {
            Some((kernel, slot)) => {
                self.kernels[kernel as usize].arbitrate_slot(slot as usize, &self.scratch, now)
            }
            None => self.arbiters[lane].arbitrate(&self.scratch, now),
        };
        match decision {
            Some(grant) => {
                assert!(
                    (self.scratch.bits() >> grant.master.index()) & 1 == 1,
                    "arbiter `{}` granted idle master {}",
                    self.arbiters[lane].name(),
                    grant.master
                );
                assert!(grant.max_words > 0, "arbiter granted zero words");
                let winner = grant.master;
                let port = &mut self.ports[lo + winner.index()];
                let words =
                    grant.max_words.min(self.configs[lane].max_burst).min(port.pending_words());
                self.stats[lane].record_grant(winner);
                port.note_grant(now);
                self.traces[lane].record(TraceEvent::Grant { cycle: now, master: winner, words });
                let slave = port.head_slave().expect("pending master has head");
                let (slo, shi) = (self.slave_offsets[lane], self.slave_offsets[lane + 1]);
                let wait_states = self.slaves[slo..shi]
                    .iter()
                    .find(|s| s.id() == slave)
                    .map_or(self.configs[lane].slave_wait_states, Slave::wait_states);
                let stall = self.configs[lane].grant_stall(wait_states);
                self.owner[lane] = winner.index() as u32;
                if stall > 0 {
                    self.stats[lane].record_stall(1);
                    if stall == 1 {
                        self.words_left[lane] = words;
                    } else {
                        self.stall_left[lane] = stall - 1;
                        self.stall_words[lane] = words;
                    }
                    None
                } else {
                    let done = self.transfer_word(lane, winner, now);
                    self.words_left[lane] = words - 1;
                    done
                }
            }
            None => {
                self.traces[lane].record(TraceEvent::Idle { cycle: now });
                None
            }
        }
    }

    /// Moves one word for `master` on lane `lane`, replicating the bus
    /// engine's per-word accounting exactly.
    #[inline]
    fn transfer_word(
        &mut self,
        lane: usize,
        master: MasterId,
        now: Cycle,
    ) -> Option<(MasterId, Completion)> {
        let lo = self.offsets[lane];
        self.stats[lane].record_words(master, 1);
        self.traces[lane].record(TraceEvent::Word { cycle: now, master });
        let done = self.ports[lo + master.index()].transfer(1, now)?;
        self.stats[lane].record_completion(master, &done);
        Some((master, done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FixedOrderArbiter;
    use crate::config::BusConfig;
    use crate::ids::SlaveId;
    use crate::request::Transaction;
    use crate::system::{System, SystemBuilder};

    /// A deterministic pseudo-random source: issues a `words`-word
    /// transaction whenever a cheap hash of the cycle clears `threshold`.
    /// Impure (it counts polls), so it exercises the step path.
    #[derive(Clone)]
    struct HashSource {
        seed: u64,
        threshold: u64,
        words: u32,
        polls: u64,
    }

    impl HashSource {
        fn new(seed: u64, threshold: u64, words: u32) -> Self {
            HashSource { seed, threshold, words, polls: 0 }
        }
    }

    impl TrafficSource for HashSource {
        fn poll(&mut self, now: Cycle) -> Option<Transaction> {
            self.polls += 1;
            let mut z = now.index().wrapping_add(self.seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 31;
            (z % 1000 < self.threshold).then(|| Transaction::new(SlaveId::new(0), self.words, now))
        }
    }

    /// A saturate-style source upholding the pure-while-backlogged
    /// contract, so fleet lanes batch tenures.
    #[derive(Clone, Copy)]
    struct Saturating {
        words: u32,
    }

    impl TrafficSource for Saturating {
        fn poll(&mut self, now: Cycle) -> Option<Transaction> {
            Some(Transaction::new(SlaveId::new(0), self.words, now))
        }

        fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
            (backlog == 0).then(|| Transaction::new(SlaveId::new(0), self.words, now))
        }

        fn pure_while_backlogged(&self) -> bool {
            true
        }
    }

    enum TestSource {
        Hash(HashSource),
        Saturating(Saturating),
    }

    impl TrafficSource for TestSource {
        fn poll(&mut self, now: Cycle) -> Option<Transaction> {
            match self {
                TestSource::Hash(s) => s.poll(now),
                TestSource::Saturating(s) => s.poll(now),
            }
        }

        fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
            match self {
                TestSource::Hash(s) => s.poll_with_backlog(now, backlog),
                TestSource::Saturating(s) => s.poll_with_backlog(now, backlog),
            }
        }

        fn next_event(&self, now: Cycle) -> Cycle {
            match self {
                TestSource::Hash(s) => s.next_event(now),
                TestSource::Saturating(s) => s.next_event(now),
            }
        }

        fn pure_while_backlogged(&self) -> bool {
            match self {
                TestSource::Hash(s) => s.pure_while_backlogged(),
                TestSource::Saturating(s) => s.pure_while_backlogged(),
            }
        }
    }

    struct LaneShape {
        masters: usize,
        words: u32,
        threshold: u64,
        saturated: bool,
        wait_states: u32,
        metrics: Option<u64>,
    }

    fn shapes() -> Vec<LaneShape> {
        vec![
            LaneShape {
                masters: 3,
                words: 8,
                threshold: 120,
                saturated: false,
                wait_states: 0,
                metrics: None,
            },
            LaneShape {
                masters: 4,
                words: 8,
                threshold: 0,
                saturated: true,
                wait_states: 0,
                metrics: None,
            },
            LaneShape {
                masters: 2,
                words: 5,
                threshold: 400,
                saturated: false,
                wait_states: 2,
                metrics: Some(64),
            },
            LaneShape {
                masters: 4,
                words: 3,
                threshold: 0,
                saturated: true,
                wait_states: 1,
                metrics: Some(128),
            },
            LaneShape {
                masters: 1,
                words: 16,
                threshold: 30,
                saturated: false,
                wait_states: 0,
                metrics: None,
            },
        ]
    }

    fn source_for(shape: &LaneShape, master: usize) -> TestSource {
        if shape.saturated {
            TestSource::Saturating(Saturating { words: shape.words })
        } else {
            TestSource::Hash(HashSource::new(master as u64 * 7 + 1, shape.threshold, shape.words))
        }
    }

    fn scalar_for(shape: &LaneShape) -> System<FixedOrderArbiter, TestSource> {
        let mut builder = SystemBuilder::new(BusConfig::default())
            .slave(Slave::with_wait_states(SlaveId::new(0), "s0", shape.wait_states))
            .trace_capacity(512);
        for m in 0..shape.masters {
            builder = builder.master(format!("m{m}"), source_for(shape, m));
        }
        if let Some(w) = shape.metrics {
            builder = builder.metrics_window(w);
        }
        builder.arbiter(FixedOrderArbiter::new(shape.masters)).build().expect("valid system")
    }

    fn lane_for(shape: &LaneShape) -> LaneBuilder<FixedOrderArbiter, TestSource> {
        let mut lane = LaneBuilder::new(BusConfig::default())
            .slave(Slave::with_wait_states(SlaveId::new(0), "s0", shape.wait_states))
            .trace_capacity(512);
        for m in 0..shape.masters {
            lane = lane.master(format!("m{m}"), source_for(shape, m));
        }
        if let Some(w) = shape.metrics {
            lane = lane.metrics_window(w);
        }
        lane.arbiter(FixedOrderArbiter::new(shape.masters))
    }

    fn assert_lane_matches_scalar(
        fleet: &Fleet<FixedOrderArbiter, TestSource>,
        lane: usize,
        scalar: &System<FixedOrderArbiter, TestSource>,
    ) {
        assert_eq!(fleet.stats(lane), scalar.stats(), "lane {lane} stats diverge");
        assert_eq!(fleet.trace(lane), scalar.trace(), "lane {lane} trace diverges");
        assert_eq!(
            fleet.metrics(lane).map(|m| m.samples()),
            scalar.metrics().map(|m| m.samples()),
            "lane {lane} metrics diverge"
        );
        for m in 0..scalar.masters() {
            let id = MasterId::new(m);
            assert_eq!(
                fleet.master(lane, id).backlog_words(),
                scalar.master(id).backlog_words(),
                "lane {lane} master {m} backlog diverges"
            );
            assert_eq!(
                fleet.master(lane, id).issued_transactions(),
                scalar.master(id).issued_transactions(),
                "lane {lane} master {m} issue count diverges"
            );
        }
    }

    #[test]
    fn every_lane_matches_its_solo_scalar_run() {
        let shapes = shapes();
        let fleet_lanes = shapes.iter().map(lane_for).collect();
        let mut fleet = Fleet::build(fleet_lanes).expect("valid fleet");
        fleet.run(5_000);
        fleet.flush_metrics();
        for (lane, shape) in shapes.iter().enumerate() {
            let mut scalar = scalar_for(shape);
            scalar.run(5_000);
            scalar.flush_metrics();
            assert_lane_matches_scalar(&fleet, lane, &scalar);
        }
    }

    #[test]
    fn warm_up_and_reset_match_scalar() {
        let shapes = shapes();
        let fleet_lanes = shapes.iter().map(lane_for).collect();
        let mut fleet = Fleet::build(fleet_lanes).expect("valid fleet");
        fleet.warm_up(1_000);
        fleet.run(3_000);
        fleet.flush_metrics();
        for (lane, shape) in shapes.iter().enumerate() {
            let mut scalar = scalar_for(shape);
            scalar.warm_up(1_000);
            scalar.run(3_000);
            scalar.flush_metrics();
            assert_lane_matches_scalar(&fleet, lane, &scalar);
        }
    }

    #[test]
    fn run_until_advances_only_trailing_lanes() {
        let shapes = shapes();
        let fleet_lanes = shapes.iter().map(lane_for).collect();
        let mut fleet = Fleet::build(fleet_lanes).expect("valid fleet");
        fleet.run_until(Cycle::new(700));
        assert!((0..fleet.len()).all(|l| fleet.now(l) == Cycle::new(700)));
        fleet.run_until(Cycle::new(500));
        assert!((0..fleet.len()).all(|l| fleet.now(l) == Cycle::new(700)), "no lane rewinds");
        fleet.run_until(Cycle::new(2_500));
        for (lane, shape) in shapes.iter().enumerate() {
            let mut scalar = scalar_for(shape);
            scalar.run(2_500);
            assert_lane_matches_scalar(&fleet, lane, &scalar);
        }
    }

    #[test]
    fn build_validation_mirrors_system_builder() {
        let empty: Vec<LaneBuilder<FixedOrderArbiter, TestSource>> = Vec::new();
        assert!(Fleet::build(empty).expect("empty fleet is valid").is_empty());

        let no_masters: LaneBuilder<FixedOrderArbiter, TestSource> =
            LaneBuilder::new(BusConfig::default());
        let err = Fleet::build(vec![no_masters]).unwrap_err();
        assert_eq!(err, FleetBuildError { lane: 0, error: BuildSystemError::NoMasters });

        let no_arbiter: LaneBuilder<FixedOrderArbiter, TestSource> =
            LaneBuilder::new(BusConfig::default())
                .master("m0", TestSource::Saturating(Saturating { words: 4 }));
        let err = Fleet::build(vec![no_arbiter]).unwrap_err();
        assert_eq!(err.lane, 0);
        assert_eq!(err.error, BuildSystemError::NoArbiter);

        let ok = lane_for(&shapes()[0]);
        let bad = LaneBuilder::new(BusConfig { max_burst: 0, ..BusConfig::default() })
            .master("m0", TestSource::Saturating(Saturating { words: 4 }))
            .arbiter(FixedOrderArbiter::new(1));
        let err = Fleet::build(vec![ok, bad]).unwrap_err();
        assert_eq!(err.lane, 1, "error names the offending lane");
        assert!(matches!(err.error, BuildSystemError::InvalidConfig(_)));
    }

    /// `shape`'s lane with trace and metrics off — the configuration
    /// under which `fast_arbitrate_lane` is legal (`fast_ok`).
    fn untraced_lane_for(shape: &LaneShape) -> LaneBuilder<FixedOrderArbiter, TestSource> {
        let mut lane = LaneBuilder::new(BusConfig::default())
            .slave(Slave::with_wait_states(SlaveId::new(0), "s0", shape.wait_states));
        for m in 0..shape.masters {
            lane = lane.master(format!("m{m}"), source_for(shape, m));
        }
        lane.arbiter(FixedOrderArbiter::new(shape.masters))
    }

    /// The scalar twin of [`untraced_lane_for`].
    fn untraced_scalar_for(shape: &LaneShape) -> System<FixedOrderArbiter, TestSource> {
        let mut builder = SystemBuilder::new(BusConfig::default())
            .slave(Slave::with_wait_states(SlaveId::new(0), "s0", shape.wait_states));
        for m in 0..shape.masters {
            builder = builder.master(format!("m{m}"), source_for(shape, m));
        }
        builder.arbiter(FixedOrderArbiter::new(shape.masters)).build().expect("valid system")
    }

    #[test]
    fn untraced_saturated_lane_takes_the_fused_path_and_stays_exact() {
        // wait_states=0 additionally exercises the zero-stall grant
        // shortcut and the fused loop's in-loop winner poll;
        // wait_states=1 routes fused decisions through the stall arm.
        for wait_states in [0u32, 1] {
            let shape = LaneShape {
                masters: 4,
                words: 8,
                threshold: 0,
                saturated: true,
                wait_states,
                metrics: None,
            };
            let mut fleet =
                Fleet::build(vec![untraced_lane_for(&shape)]).expect("valid fleet");
            assert!(fleet.fast_ok[0], "untraced, metric-less lane must qualify for fusing");
            assert_eq!(fleet.zero_stall[0], wait_states == 0);
            let mut scalar = untraced_scalar_for(&shape);
            // Odd slice lengths land window limits mid-tenure and
            // mid-stall; exactness must survive every resume.
            for slice in [1u64, 5, 63, 2, 640, 9, 3000, 17, 1000] {
                fleet.run(slice);
                scalar.run(slice);
                assert_lane_matches_scalar(&fleet, 0, &scalar);
            }
        }
    }

    #[test]
    fn untraced_mixed_fleet_interleaves_fused_and_step_lanes_exactly() {
        // Saturated lanes fuse whole multi-tenure windows while hash
        // lanes (impure sources, every-cycle horizons) decline the
        // fast path and single-step; both must agree with their solo
        // scalar twins at every slice boundary.
        let shapes = shapes();
        let fleet_lanes = shapes.iter().map(untraced_lane_for).collect();
        let mut fleet = Fleet::build(fleet_lanes).expect("valid fleet");
        assert!(fleet.fast_ok.iter().all(|&ok| ok), "every untraced lane qualifies");
        let mut scalars: Vec<_> = shapes.iter().map(untraced_scalar_for).collect();
        for slice in [7u64, 1, 500, 64, 3, 2000, 11] {
            fleet.run(slice);
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                scalar.run(slice);
                assert_lane_matches_scalar(&fleet, lane, scalar);
            }
        }
    }

    #[test]
    fn saturated_lane_batches_but_stays_exact_mid_run() {
        // Run in many small slices so batches constantly hit `target`
        // boundaries mid-tenure; exactness must survive partial batches.
        let shape = &shapes()[1];
        let mut fleet = Fleet::build(vec![lane_for(shape)]).expect("valid fleet");
        let mut scalar = scalar_for(shape);
        for slice in [1u64, 3, 7, 2, 64, 5, 333, 11, 1000] {
            fleet.run(slice);
            scalar.run(slice);
            assert_lane_matches_scalar(&fleet, 0, &scalar);
        }
    }
}
