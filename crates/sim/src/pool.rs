//! A std-only scoped-thread job pool for embarrassingly parallel runs.
//!
//! Every experiment in this repository is a set of *independent*
//! simulations: each job owns its seed, builds its own system, and
//! touches no shared mutable state. This module fans such jobs out
//! across OS threads and collects the results **in input order**, so a
//! parallel run is byte-identical to the serial one — the schedule of
//! workers affects only wall-clock time, never results.
//!
//! The pool is deliberately minimal: [`std::thread::scope`] plus an
//! atomic work index. No channels, no queues, no external crates. Jobs
//! here are whole bus simulations (milliseconds to seconds each), so
//! per-job overhead is irrelevant and work-stealing granularity of one
//! job is ideal.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads available to this process (at least 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a requested job count: `0` means "use all available
/// hardware parallelism", any other value is taken literally.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// Applies `f` to every input and returns the outputs in input order.
///
/// `jobs` is the worker-thread count (`0` = all available cores). With
/// one worker (or one input) the map runs inline on the caller's
/// thread — no threads are spawned, which keeps `--jobs 1` a true
/// serial baseline. Workers claim inputs through an atomic cursor, so
/// slow jobs do not convoy fast ones.
///
/// # Panics
///
/// Propagates the panic of any job (the scope joins all workers first).
///
/// ```
/// let squares = socsim::pool::parallel_map(4, &[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<I, T, F>(jobs: usize, inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let workers = resolve_jobs(jobs).min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.iter().enumerate().map(|(i, input)| f(i, input)).collect();
    }
    let cursor = AtomicUsize::new(0);
    // One uncontended mutex per result slot (each slot is written by
    // exactly one worker, read only after the scope joins).
    let slots: Vec<Mutex<Option<T>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(i) else { break };
                let value = f(i, input);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined, every slot filled")
        })
        .collect()
}

/// Runs two independent closures, concurrently when `jobs > 1`
/// (`0` = auto), and returns both results.
///
/// ```
/// let (a, b) = socsim::pool::join(2, || 6 * 7, || "done");
/// assert_eq!((a, b), (42, "done"));
/// ```
pub fn join<A, B, FA, FB>(jobs: usize, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if resolve_jobs(jobs) <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(fb);
        let a = fa();
        let b = match handle.join() {
            Ok(b) => b,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order_regardless_of_worker_count() {
        let inputs: Vec<u64> = (0..100).collect();
        let serial = parallel_map(1, &inputs, |i, &x| (i as u64) * 1000 + x);
        for jobs in [2, 3, 8, 64] {
            let parallel = parallel_map(jobs, &inputs, |i, &x| (i as u64) * 1000 + x);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicU64::new(0);
        let inputs: Vec<u32> = (0..57).collect();
        let out = parallel_map(4, &inputs, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, &x: &u32| x).is_empty());
        assert_eq!(parallel_map(8, &[7], |_, &x| x + 1), vec![8]);
        // More workers than jobs: the pool clamps.
        assert_eq!(parallel_map(64, &[1, 2], |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(resolve_jobs(0), available_jobs());
        assert_eq!(resolve_jobs(3), 3);
        assert!(available_jobs() >= 1);
        let out = parallel_map(0, &[1, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn join_returns_both_results() {
        assert_eq!(join(0, || 1, || 2), (1, 2));
        assert_eq!(join(1, || 1, || 2), (1, 2));
        assert_eq!(join(4, || "a".to_owned(), || vec![1]), ("a".to_owned(), vec![1]));
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        let inputs: Vec<u32> = (0..32).collect();
        let _ = parallel_map(4, &inputs, |_, &x| {
            if x == 13 {
                panic!("job panicked on {x}");
            }
            x
        });
    }
}
