//! Symbolic bus traces, for debugging and for Figure-5-style waveforms.

use crate::cycle::Cycle;
use crate::ids::MasterId;
use serde::{Deserialize, Serialize};

/// One event on the bus, recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A master won arbitration for a burst of up to `words` words.
    Grant {
        /// Cycle of the decision.
        cycle: Cycle,
        /// Winning master.
        master: MasterId,
        /// Words covered by the grant.
        words: u32,
    },
    /// One word transferred by `master` during `cycle`.
    Word {
        /// Cycle occupied by the word.
        cycle: Cycle,
        /// Transferring master.
        master: MasterId,
    },
    /// The bus idled during `cycle`.
    Idle {
        /// The idle cycle.
        cycle: Cycle,
    },
    /// An injected fault disturbed `master`'s tenure or grant during
    /// `cycle` (see [`crate::fault::FaultKind`] in the fault log for the
    /// specific cause).
    Fault {
        /// Cycle of the disturbance.
        cycle: Cycle,
        /// Master whose grant or transfer was disturbed.
        master: MasterId,
    },
}

impl TraceEvent {
    /// The cycle at which the event occurred.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Grant { cycle, .. }
            | TraceEvent::Word { cycle, .. }
            | TraceEvent::Idle { cycle }
            | TraceEvent::Fault { cycle, .. } => cycle,
        }
    }
}

/// A bounded recording of bus activity.
///
/// Disabled by default; when enabled it records up to a capacity of
/// events, then silently stops (long experiments only need statistics).
///
/// ```
/// use socsim::{BusTrace, TraceEvent, Cycle, MasterId};
/// let mut trace = BusTrace::enabled(16);
/// trace.record(TraceEvent::Word { cycle: Cycle::ZERO, master: MasterId::new(1) });
/// trace.record(TraceEvent::Idle { cycle: Cycle::new(1) });
/// assert_eq!(trace.render_owners(0..2), "1.");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BusTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
}

impl BusTrace {
    /// A disabled trace that records nothing.
    pub fn disabled() -> Self {
        BusTrace { events: Vec::new(), capacity: 0 }
    }

    /// An enabled trace recording at most `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        BusTrace { events: Vec::new(), capacity }
    }

    /// Whether this trace records events.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records `event` if enabled and below capacity.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders bus ownership over a cycle range as one character per
    /// cycle: the master's index digit (modulo 10) when a word
    /// transferred, `.` when idle, `x` when an injected fault disturbed
    /// the cycle, and space for unrecorded cycles.
    ///
    /// This is the textual equivalent of the paper's Figure 5 "Bus Trace"
    /// waveforms.
    pub fn render_owners(&self, cycles: std::ops::Range<u64>) -> String {
        let mut chars: Vec<char> = vec![' '; (cycles.end - cycles.start) as usize];
        for event in &self.events {
            let c = event.cycle().index();
            if c < cycles.start || c >= cycles.end {
                continue;
            }
            let slot = (c - cycles.start) as usize;
            match *event {
                TraceEvent::Word { master, .. } => {
                    chars[slot] = char::from_digit((master.index() % 10) as u32, 10).unwrap_or('?');
                }
                TraceEvent::Idle { .. } => {
                    if chars[slot] == ' ' {
                        chars[slot] = '.';
                    }
                }
                TraceEvent::Fault { .. } => {
                    if chars[slot] == ' ' || chars[slot] == '.' {
                        chars[slot] = 'x';
                    }
                }
                TraceEvent::Grant { .. } => {}
            }
        }
        chars.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = BusTrace::disabled();
        trace.record(TraceEvent::Idle { cycle: Cycle::ZERO });
        assert!(trace.events().is_empty());
        assert!(!trace.is_enabled());
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut trace = BusTrace::enabled(2);
        for i in 0..5 {
            trace.record(TraceEvent::Idle { cycle: Cycle::new(i) });
        }
        assert_eq!(trace.events().len(), 2);
    }

    #[test]
    fn render_shows_owners_and_idle() {
        let mut trace = BusTrace::enabled(8);
        trace.record(TraceEvent::Grant {
            cycle: Cycle::new(0),
            master: MasterId::new(2),
            words: 2,
        });
        trace.record(TraceEvent::Word { cycle: Cycle::new(0), master: MasterId::new(2) });
        trace.record(TraceEvent::Word { cycle: Cycle::new(1), master: MasterId::new(2) });
        trace.record(TraceEvent::Idle { cycle: Cycle::new(2) });
        trace.record(TraceEvent::Word { cycle: Cycle::new(3), master: MasterId::new(0) });
        assert_eq!(trace.render_owners(0..4), "22.0");
    }

    #[test]
    fn render_marks_faulted_cycles() {
        let mut trace = BusTrace::enabled(8);
        trace.record(TraceEvent::Word { cycle: Cycle::new(0), master: MasterId::new(1) });
        trace.record(TraceEvent::Idle { cycle: Cycle::new(1) });
        trace.record(TraceEvent::Fault { cycle: Cycle::new(1), master: MasterId::new(0) });
        // A fault never overwrites a transferred word.
        trace.record(TraceEvent::Fault { cycle: Cycle::new(0), master: MasterId::new(1) });
        assert_eq!(trace.render_owners(0..3), "1x ");
    }
}
