//! Symbolic bus traces, for debugging and for Figure-5-style waveforms.
//!
//! Tracing has two independent halves that can be combined freely:
//!
//! * a bounded **in-memory buffer** (the classic [`BusTrace`]) keeping
//!   the first `capacity` events for post-run rendering — once full,
//!   further events are *counted* as dropped and the trace reports
//!   [`BusTrace::is_truncated`] instead of silently losing data;
//! * a streaming **sink** ([`TraceSink`]) that observes every event as
//!   it happens with no capacity limit: an overwrite-oldest ring
//!   ([`RingSink`]), a JSON-lines writer ([`JsonlSink`]), or a live VCD
//!   bridge ([`crate::vcd::VcdSink`]).
//!
//! Sinks never see dropped events — the capacity bound applies only to
//! the in-memory buffer.

use crate::cycle::Cycle;
use crate::ids::MasterId;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// One event on the bus, recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A master won arbitration for a burst of up to `words` words.
    Grant {
        /// Cycle of the decision.
        cycle: Cycle,
        /// Winning master.
        master: MasterId,
        /// Words covered by the grant.
        words: u32,
    },
    /// One word transferred by `master` during `cycle`.
    Word {
        /// Cycle occupied by the word.
        cycle: Cycle,
        /// Transferring master.
        master: MasterId,
    },
    /// The bus idled during `cycle`.
    Idle {
        /// The idle cycle.
        cycle: Cycle,
    },
    /// An injected fault disturbed `master`'s tenure or grant during
    /// `cycle` (see [`crate::fault::FaultKind`] in the fault log for the
    /// specific cause).
    Fault {
        /// Cycle of the disturbance.
        cycle: Cycle,
        /// Master whose grant or transfer was disturbed.
        master: MasterId,
    },
}

impl TraceEvent {
    /// The cycle at which the event occurred.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Grant { cycle, .. }
            | TraceEvent::Word { cycle, .. }
            | TraceEvent::Idle { cycle }
            | TraceEvent::Fault { cycle, .. } => cycle,
        }
    }
}

/// A streaming consumer of trace events.
///
/// Sinks observe every event the bus emits, in cycle order, with no
/// capacity limit — the backpressure-free alternative to the bounded
/// in-memory buffer. Implementations latch I/O errors internally
/// (recording must stay infallible on the hot path) and surface them
/// from [`TraceSink::finish`].
pub trait TraceSink {
    /// Observes one event. Must not fail; sinks latch errors and report
    /// them from [`TraceSink::finish`].
    fn record(&mut self, event: &TraceEvent);

    /// Completes the stream: flushes buffered output and returns the
    /// first error latched during recording, if any.
    ///
    /// # Errors
    ///
    /// Returns any I/O error latched while recording or flushing.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<T: TraceSink + ?Sized> TraceSink for Box<T> {
    fn record(&mut self, event: &TraceEvent) {
        (**self).record(event);
    }

    fn finish(&mut self) -> io::Result<()> {
        (**self).finish()
    }
}

/// Sharing adapter: lets the caller keep a handle to a sink after the
/// system takes ownership of its clone (e.g. to read a [`RingSink`]
/// back after the run).
impl<S: TraceSink> TraceSink for Arc<Mutex<S>> {
    fn record(&mut self, event: &TraceEvent) {
        self.lock().expect("trace sink poisoned").record(event);
    }

    fn finish(&mut self) -> io::Result<()> {
        self.lock().expect("trace sink poisoned").finish()
    }
}

/// An in-memory ring sink: keeps the **last** `capacity` events,
/// overwriting the oldest — the complement of the bounded buffer, which
/// keeps the first.
///
/// ```
/// use socsim::{RingSink, TraceSink, TraceEvent, Cycle};
/// let mut ring = RingSink::new(2);
/// for c in 0..5 {
///     ring.record(&TraceEvent::Idle { cycle: Cycle::new(c) });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.overwritten(), 3);
/// let oldest = ring.events().next().unwrap();
/// assert_eq!(oldest.cycle(), Cycle::new(3)); // oldest kept
/// ```
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    overwritten: u64,
}

impl RingSink {
    /// A ring keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink { events: VecDeque::with_capacity(capacity), capacity, overwritten: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of old events overwritten to make room for newer ones.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.overwritten += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.overwritten += 1;
        }
        self.events.push_back(*event);
    }
}

/// A sink writing one JSON object per event, one per line (JSON Lines),
/// suitable for streaming multi-million-cycle traces to disk and
/// post-processing with standard tools.
///
/// Lines look like `{"cycle":3,"event":"word","master":1}`; grant lines
/// add a `"words"` field. I/O errors are latched and returned from
/// [`TraceSink::finish`].
///
/// ```
/// use socsim::{JsonlSink, TraceSink, TraceEvent, Cycle, MasterId};
/// let mut out = Vec::new();
/// let mut sink = JsonlSink::new(&mut out);
/// sink.record(&TraceEvent::Grant { cycle: Cycle::ZERO, master: MasterId::new(1), words: 4 });
/// sink.record(&TraceEvent::Idle { cycle: Cycle::new(4) });
/// sink.finish().unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert_eq!(text.lines().next().unwrap(),
///            r#"{"cycle":0,"event":"grant","master":1,"words":4}"#);
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
    written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink streaming JSON lines into `writer`. Wrap slow writers
    /// (files) in [`std::io::BufWriter`].
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, error: None, written: 0 }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    fn write_line(&mut self, args: std::fmt::Arguments<'_>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_fmt(args) {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Grant { cycle, master, words } => self.write_line(format_args!(
                "{{\"cycle\":{},\"event\":\"grant\",\"master\":{},\"words\":{}}}\n",
                cycle.index(),
                master.index(),
                words
            )),
            TraceEvent::Word { cycle, master } => self.write_line(format_args!(
                "{{\"cycle\":{},\"event\":\"word\",\"master\":{}}}\n",
                cycle.index(),
                master.index()
            )),
            TraceEvent::Idle { cycle } => self
                .write_line(format_args!("{{\"cycle\":{},\"event\":\"idle\"}}\n", cycle.index())),
            TraceEvent::Fault { cycle, master } => self.write_line(format_args!(
                "{{\"cycle\":{},\"event\":\"fault\",\"master\":{}}}\n",
                cycle.index(),
                master.index()
            )),
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// A bounded recording of bus activity, optionally teeing every event
/// into a streaming [`TraceSink`].
///
/// Disabled by default. When enabled with a capacity it records up to
/// that many events and then — instead of silently stopping — counts
/// the overflow: [`BusTrace::is_truncated`] and [`BusTrace::dropped`]
/// report whether and how much of the run fell off the end of the
/// buffer. An attached sink always sees the full event stream
/// regardless of the buffer capacity.
///
/// ```
/// use socsim::{BusTrace, TraceEvent, Cycle, MasterId};
/// let mut trace = BusTrace::enabled(16);
/// trace.record(TraceEvent::Word { cycle: Cycle::ZERO, master: MasterId::new(1) });
/// trace.record(TraceEvent::Idle { cycle: Cycle::new(1) });
/// assert_eq!(trace.render_owners(0..2), "1.");
/// assert!(!trace.is_truncated());
/// ```
#[derive(Debug, Default)]
pub struct BusTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    sink: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Box<dyn TraceSink> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Box<dyn TraceSink>")
    }
}

impl Clone for BusTrace {
    /// Clones the buffered events and counters. The streaming sink, if
    /// any, is **not** cloned — the clone records to no sink.
    fn clone(&self) -> Self {
        BusTrace {
            events: self.events.clone(),
            capacity: self.capacity,
            dropped: self.dropped,
            sink: None,
        }
    }
}

impl PartialEq for BusTrace {
    /// Compares the buffered events and truncation accounting; attached
    /// sinks are ignored.
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.capacity == other.capacity
            && self.dropped == other.dropped
    }
}

impl BusTrace {
    /// A disabled trace that records nothing.
    pub fn disabled() -> Self {
        BusTrace::default()
    }

    /// An enabled trace buffering at most `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        BusTrace { capacity, ..BusTrace::default() }
    }

    /// Attaches a streaming sink that observes every recorded event
    /// (builder style). A trace may have a sink without any in-memory
    /// buffer (`capacity` 0): the buffer stays empty but the sink still
    /// sees the full stream.
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Whether this trace observes events (buffer enabled or a sink
    /// attached).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0 || self.sink.is_some()
    }

    /// Records `event`: buffers it if below capacity (counting overflow
    /// as dropped) and forwards it to the attached sink, if any.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&event);
        }
        if self.capacity > 0 {
            if self.events.len() < self.capacity {
                self.events.push(event);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Records an [`TraceEvent::Idle`] event for every cycle in
    /// `start..start + len` — the fast-forward kernel's batched form of
    /// the per-cycle idle recording the cycle kernel performs, preserving
    /// byte-identical buffers, drop counts, and sink streams across
    /// kernels. A no-op when the trace is disabled.
    pub fn record_idle_span(&mut self, start: Cycle, len: u64) {
        if !self.is_enabled() {
            return;
        }
        for offset in 0..len {
            self.record(TraceEvent::Idle { cycle: start + offset });
        }
    }

    /// Records a [`TraceEvent::Word`] event for `master` at every cycle
    /// in `start..start + words` — the TLM kernel's batched form of the
    /// per-cycle word recording the cycle kernel performs during a
    /// burst, preserving byte-identical buffers, drop counts, and sink
    /// streams across kernels. A no-op when the trace is disabled.
    pub fn record_word_span(&mut self, start: Cycle, words: u32, master: MasterId) {
        if !self.is_enabled() {
            return;
        }
        for offset in 0..u64::from(words) {
            self.record(TraceEvent::Word { cycle: start + offset, master });
        }
    }

    /// All buffered events in time order (at most the capacity; see
    /// [`BusTrace::dropped`] for what fell off the end).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether the in-memory buffer overflowed: events beyond the
    /// capacity were counted but not kept.
    pub fn is_truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Number of events that did not fit in the in-memory buffer. An
    /// attached sink still saw them.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Completes the attached sink's stream (flush + latched-error
    /// check). A trace without a sink trivially succeeds.
    ///
    /// # Errors
    ///
    /// Returns any I/O error the sink latched while recording.
    pub fn finish_sink(&mut self) -> io::Result<()> {
        self.sink.as_mut().map_or(Ok(()), TraceSink::finish)
    }

    /// Renders bus ownership over a cycle range as one character per
    /// cycle: the master's index digit (modulo 10) when a word
    /// transferred, `.` when idle, `x` when an injected fault disturbed
    /// the cycle, and space for unrecorded cycles.
    ///
    /// This is the textual equivalent of the paper's Figure 5 "Bus Trace"
    /// waveforms.
    pub fn render_owners(&self, cycles: std::ops::Range<u64>) -> String {
        let mut chars: Vec<char> = vec![' '; (cycles.end - cycles.start) as usize];
        for event in &self.events {
            let c = event.cycle().index();
            if c < cycles.start || c >= cycles.end {
                continue;
            }
            let slot = (c - cycles.start) as usize;
            match *event {
                TraceEvent::Word { master, .. } => {
                    chars[slot] = char::from_digit((master.index() % 10) as u32, 10).unwrap_or('?');
                }
                TraceEvent::Idle { .. } => {
                    if chars[slot] == ' ' {
                        chars[slot] = '.';
                    }
                }
                TraceEvent::Fault { .. } => {
                    if chars[slot] == ' ' || chars[slot] == '.' {
                        chars[slot] = 'x';
                    }
                }
                TraceEvent::Grant { .. } => {}
            }
        }
        chars.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = BusTrace::disabled();
        trace.record(TraceEvent::Idle { cycle: Cycle::ZERO });
        assert!(trace.events().is_empty());
        assert!(!trace.is_enabled());
        assert!(!trace.is_truncated());
    }

    #[test]
    fn capacity_bounds_recording_and_counts_overflow() {
        let mut trace = BusTrace::enabled(2);
        for i in 0..5 {
            trace.record(TraceEvent::Idle { cycle: Cycle::new(i) });
        }
        assert_eq!(trace.events().len(), 2);
        assert!(trace.is_truncated());
        assert_eq!(trace.dropped(), 3);
    }

    #[test]
    fn render_shows_owners_and_idle() {
        let mut trace = BusTrace::enabled(8);
        trace.record(TraceEvent::Grant {
            cycle: Cycle::new(0),
            master: MasterId::new(2),
            words: 2,
        });
        trace.record(TraceEvent::Word { cycle: Cycle::new(0), master: MasterId::new(2) });
        trace.record(TraceEvent::Word { cycle: Cycle::new(1), master: MasterId::new(2) });
        trace.record(TraceEvent::Idle { cycle: Cycle::new(2) });
        trace.record(TraceEvent::Word { cycle: Cycle::new(3), master: MasterId::new(0) });
        assert_eq!(trace.render_owners(0..4), "22.0");
    }

    #[test]
    fn render_marks_faulted_cycles() {
        let mut trace = BusTrace::enabled(8);
        trace.record(TraceEvent::Word { cycle: Cycle::new(0), master: MasterId::new(1) });
        trace.record(TraceEvent::Idle { cycle: Cycle::new(1) });
        trace.record(TraceEvent::Fault { cycle: Cycle::new(1), master: MasterId::new(0) });
        // A fault never overwrites a transferred word.
        trace.record(TraceEvent::Fault { cycle: Cycle::new(0), master: MasterId::new(1) });
        assert_eq!(trace.render_owners(0..3), "1x ");
    }

    #[test]
    fn sink_sees_past_the_buffer_capacity() {
        let ring = Arc::new(Mutex::new(RingSink::new(8)));
        let mut trace = BusTrace::enabled(2).with_sink(Box::new(Arc::clone(&ring)));
        for i in 0..5 {
            trace.record(TraceEvent::Idle { cycle: Cycle::new(i) });
        }
        assert_eq!(trace.events().len(), 2, "buffer keeps the first two");
        assert_eq!(trace.dropped(), 3);
        assert_eq!(ring.lock().unwrap().len(), 5, "sink saw everything");
        assert!(trace.finish_sink().is_ok());
    }

    #[test]
    fn sink_only_trace_is_enabled_with_empty_buffer() {
        let ring = Arc::new(Mutex::new(RingSink::new(4)));
        let mut trace = BusTrace::disabled().with_sink(Box::new(Arc::clone(&ring)));
        assert!(trace.is_enabled());
        trace.record(TraceEvent::Idle { cycle: Cycle::ZERO });
        assert!(trace.events().is_empty());
        assert!(!trace.is_truncated(), "no buffer, nothing to truncate");
        assert_eq!(ring.lock().unwrap().len(), 1);
    }

    #[test]
    fn idle_span_matches_per_cycle_records() {
        let ring = Arc::new(Mutex::new(RingSink::new(16)));
        let mut spanned = BusTrace::enabled(3).with_sink(Box::new(Arc::clone(&ring)));
        spanned.record_idle_span(Cycle::new(10), 5);
        let mut stepped = BusTrace::enabled(3);
        for c in 10..15 {
            stepped.record(TraceEvent::Idle { cycle: Cycle::new(c) });
        }
        assert_eq!(spanned, stepped, "buffer and drop accounting match");
        assert_eq!(spanned.dropped(), 2);
        assert_eq!(ring.lock().unwrap().len(), 5, "sink saw every cycle");

        let mut off = BusTrace::disabled();
        off.record_idle_span(Cycle::ZERO, 1_000);
        assert!(off.events().is_empty());
    }

    #[test]
    fn word_span_matches_per_cycle_records() {
        let ring = Arc::new(Mutex::new(RingSink::new(16)));
        let mut spanned = BusTrace::enabled(3).with_sink(Box::new(Arc::clone(&ring)));
        spanned.record_word_span(Cycle::new(20), 5, MasterId::new(2));
        let mut stepped = BusTrace::enabled(3);
        for c in 20..25 {
            stepped.record(TraceEvent::Word { cycle: Cycle::new(c), master: MasterId::new(2) });
        }
        assert_eq!(spanned, stepped, "buffer and drop accounting match");
        assert_eq!(spanned.dropped(), 2);
        assert_eq!(ring.lock().unwrap().len(), 5, "sink saw every word cycle");

        let mut off = BusTrace::disabled();
        off.record_word_span(Cycle::ZERO, 1_000, MasterId::new(0));
        assert!(off.events().is_empty());
    }

    #[test]
    fn ring_sink_overwrites_oldest() {
        let mut ring = RingSink::new(3);
        for i in 0..7 {
            ring.record(&TraceEvent::Idle { cycle: Cycle::new(i) });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 4);
        let kept: Vec<u64> = ring.events().map(|e| e.cycle().index()).collect();
        assert_eq!(kept, vec![4, 5, 6]);
        assert!(!ring.is_empty());
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_event() {
        let mut out = Vec::new();
        let mut sink = JsonlSink::new(&mut out);
        sink.record(&TraceEvent::Word { cycle: Cycle::new(7), master: MasterId::new(3) });
        sink.record(&TraceEvent::Fault { cycle: Cycle::new(8), master: MasterId::new(0) });
        sink.finish().unwrap();
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], r#"{"cycle":7,"event":"word","master":3}"#);
        assert_eq!(lines[1], r#"{"cycle":8,"event":"fault","master":0}"#);
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record(&TraceEvent::Idle { cycle: Cycle::ZERO });
        sink.record(&TraceEvent::Idle { cycle: Cycle::new(1) });
        assert_eq!(sink.written(), 0);
        let err = sink.finish().expect_err("latched error surfaces");
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn clone_and_eq_ignore_the_sink() {
        let mut trace =
            BusTrace::enabled(4).with_sink(Box::new(Arc::new(Mutex::new(RingSink::new(1)))));
        trace.record(TraceEvent::Idle { cycle: Cycle::ZERO });
        let copy = trace.clone();
        assert_eq!(copy, trace);
        assert!(!copy.is_enabled() || copy.events().len() == 1);
    }
}
