//! Bus-cycle time points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in bus cycles since reset.
///
/// `Cycle` is a newtype around `u64` so that cycle counts cannot be
/// accidentally mixed with word counts or other integers.
///
/// ```
/// use socsim::Cycle;
/// let t = Cycle::new(10) + 5;
/// assert_eq!(t.index(), 15);
/// assert_eq!(t - Cycle::new(10), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// The first cycle after reset.
    pub const ZERO: Cycle = Cycle(0);

    /// A time point later than any reachable simulation cycle.
    ///
    /// The fast-forward kernel uses `NEVER` as the event horizon of
    /// components that have nothing scheduled (see
    /// [`crate::fastforward::NextEvent`]): taking the minimum over all
    /// horizons then naturally ignores them.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a cycle time point from a raw cycle index.
    #[inline]
    pub fn new(index: u64) -> Self {
        Cycle(index)
    }

    /// Returns the raw cycle index.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the cycle `n` cycles after `self`, saturating at `u64::MAX`.
    #[inline]
    pub fn saturating_add(self, n: u64) -> Self {
        Cycle(self.0.saturating_add(n))
    }

    /// Number of cycles from `earlier` to `self`, or zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Number of cycles from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(index: u64) -> Self {
        Cycle(index)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Cycle::new(100);
        assert_eq!((t + 20) - t, 20);
        let mut u = t;
        u += 5;
        assert_eq!(u.index(), 105);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::ZERO, Cycle::new(0));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
        assert_eq!(Cycle::new(u64::MAX).saturating_add(3).index(), u64::MAX);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(7).to_string(), "cycle 7");
    }

    #[test]
    fn never_is_after_everything() {
        assert!(Cycle::new(u64::MAX - 1) < Cycle::NEVER);
        assert_eq!(Cycle::NEVER.saturating_add(10), Cycle::NEVER);
    }
}
