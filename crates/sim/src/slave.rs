//! Slave-side bus components.

use crate::ids::SlaveId;
use serde::{Deserialize, Serialize};

/// A bus slave: a component that responds to transactions (e.g. an
/// on-chip memory). The only performance-relevant property at the bus
/// level is how many wait states it inserts before responding to the
/// first word of a burst.
///
/// ```
/// use socsim::{Slave, SlaveId};
/// let mem = Slave::new(SlaveId::new(0), "shared-mem");
/// assert_eq!(mem.wait_states(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slave {
    id: SlaveId,
    name: String,
    wait_states: u32,
}

impl Slave {
    /// Creates a single-cycle (zero-wait-state) slave.
    pub fn new(id: SlaveId, name: impl Into<String>) -> Self {
        Slave { id, name: name.into(), wait_states: 0 }
    }

    /// Creates a slave inserting `wait_states` stall cycles before the
    /// first word of every burst addressed to it.
    pub fn with_wait_states(id: SlaveId, name: impl Into<String>, wait_states: u32) -> Self {
        Slave { id, name: name.into(), wait_states }
    }

    /// This slave's id.
    pub fn id(&self) -> SlaveId {
        self.id
    }

    /// The human-readable component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stall cycles before the first word of each burst.
    pub fn wait_states(&self) -> u32 {
        self.wait_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_states_configurable() {
        let s = Slave::with_wait_states(SlaveId::new(1), "sram", 2);
        assert_eq!(s.wait_states(), 2);
        assert_eq!(s.id(), SlaveId::new(1));
        assert_eq!(s.name(), "sram");
    }
}
