//! Error types for system construction.

use std::error::Error;
use std::fmt;

/// Error returned when a [`crate::SystemBuilder`] cannot produce a valid
/// system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildSystemError {
    /// No master was added to the system.
    NoMasters,
    /// More masters were added than the bus supports.
    TooManyMasters {
        /// Number of masters added.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// No arbiter was configured.
    NoArbiter,
    /// The bus configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for BuildSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSystemError::NoMasters => write!(f, "system has no masters"),
            BuildSystemError::TooManyMasters { got, max } => {
                write!(f, "system has {got} masters but the bus supports at most {max}")
            }
            BuildSystemError::NoArbiter => write!(f, "system has no arbiter"),
            BuildSystemError::InvalidConfig(msg) => write!(f, "invalid bus config: {msg}"),
        }
    }
}

impl Error for BuildSystemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        assert_eq!(BuildSystemError::NoMasters.to_string(), "system has no masters");
        let e = BuildSystemError::TooManyMasters { got: 40, max: 32 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<BuildSystemError>();
    }
}
