//! Error types for system construction.

use std::error::Error;
use std::fmt;

/// Error returned when a [`crate::SystemBuilder`] cannot produce a valid
/// system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildSystemError {
    /// No master was added to the system.
    NoMasters,
    /// More masters were added than the bus supports.
    TooManyMasters {
        /// Number of masters added.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// No arbiter was configured.
    NoArbiter,
    /// The bus configuration is invalid.
    InvalidConfig(String),
    /// The fault-injection configuration is invalid (e.g. a rate
    /// outside `[0, 1]` or a zero outage duration).
    InvalidFaultConfig(String),
    /// The retry policy is invalid (e.g. a zero backoff base or
    /// factor).
    InvalidRetryConfig(String),
    /// The watchdog timeout is invalid (zero cycles would abort every
    /// transaction immediately).
    InvalidTimeout(u64),
    /// The metrics sampling window is invalid (a zero-cycle window can
    /// never close).
    InvalidMetricsWindow(u64),
}

impl fmt::Display for BuildSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSystemError::NoMasters => write!(f, "system has no masters"),
            BuildSystemError::TooManyMasters { got, max } => {
                write!(f, "system has {got} masters but the bus supports at most {max}")
            }
            BuildSystemError::NoArbiter => write!(f, "system has no arbiter"),
            BuildSystemError::InvalidConfig(msg) => write!(f, "invalid bus config: {msg}"),
            BuildSystemError::InvalidFaultConfig(msg) => {
                write!(f, "invalid fault config: {msg}")
            }
            BuildSystemError::InvalidRetryConfig(msg) => {
                write!(f, "invalid retry policy: {msg}")
            }
            BuildSystemError::InvalidTimeout(cycles) => {
                write!(f, "invalid watchdog timeout: {cycles} cycles (must be at least 1)")
            }
            BuildSystemError::InvalidMetricsWindow(cycles) => {
                write!(f, "invalid metrics window: {cycles} cycles (must be at least 1)")
            }
        }
    }
}

impl Error for BuildSystemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        assert_eq!(BuildSystemError::NoMasters.to_string(), "system has no masters");
        let e = BuildSystemError::TooManyMasters { got: 40, max: 32 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
    }

    #[test]
    fn fault_display_messages_are_descriptive() {
        let e = BuildSystemError::InvalidFaultConfig(
            "slave-error rate must be in [0, 1], got 2".into(),
        );
        assert_eq!(
            e.to_string(),
            "invalid fault config: slave-error rate must be in [0, 1], got 2"
        );
        let e = BuildSystemError::InvalidRetryConfig(
            "retry backoff base must be at least 1 cycle".into(),
        );
        assert_eq!(
            e.to_string(),
            "invalid retry policy: retry backoff base must be at least 1 cycle"
        );
        let e = BuildSystemError::InvalidTimeout(0);
        assert!(e.to_string().contains("0 cycles"));
        assert!(e.to_string().contains("at least 1"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<BuildSystemError>();
    }
}
