//! Wall-clock profiling of the cycle kernel's simulation phases.
//!
//! Each [`crate::System::step`] passes through three phases: polling
//! the traffic sources, stepping the bus/arbiter, and accounting
//! (statistics, metrics, failover bookkeeping). The [`PhaseProfiler`]
//! attributes wall-clock time to each, so `suite --bench` can report
//! *where* simulation time goes instead of only totals.
//!
//! Profiling is wall-clock measurement, not simulated time — it never
//! participates in deterministic results, and a disabled profiler costs
//! one branch per phase per cycle (no clock reads).

use std::time::{Duration, Instant};

/// The phases of one simulated cycle, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPhase {
    /// Polling every master's traffic source for new transactions.
    Poll,
    /// Stepping the bus: arbitration, fault machinery, word transfer.
    Bus,
    /// Statistics, metrics sampling and failover bookkeeping.
    Accounting,
}

impl SimPhase {
    /// All phases in execution order.
    pub const ALL: [SimPhase; 3] = [SimPhase::Poll, SimPhase::Bus, SimPhase::Accounting];

    /// A stable lowercase label (used in reports and bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            SimPhase::Poll => "poll",
            SimPhase::Bus => "bus",
            SimPhase::Accounting => "accounting",
        }
    }

    fn index(self) -> usize {
        match self {
            SimPhase::Poll => 0,
            SimPhase::Bus => 1,
            SimPhase::Accounting => 2,
        }
    }
}

/// Accumulates wall-clock time per [`SimPhase`] across many cycles.
///
/// The lap protocol keeps the disabled path free of clock reads:
/// [`PhaseProfiler::start`] returns `None` when disabled, and
/// [`PhaseProfiler::lap`] is a no-op on a `None` token.
///
/// ```
/// use socsim::profile::{PhaseProfiler, SimPhase};
/// let mut profiler = PhaseProfiler::enabled();
/// let mut lap = profiler.start();
/// // ... poll traffic sources ...
/// profiler.lap(SimPhase::Poll, &mut lap);
/// // ... step the bus ...
/// profiler.lap(SimPhase::Bus, &mut lap);
/// assert_eq!(profiler.laps(), 1);
/// assert!(profiler.total(SimPhase::Poll) <= profiler.total_wall());
///
/// let mut off = PhaseProfiler::disabled();
/// assert!(off.start().is_none()); // no clock read on the hot path
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    totals: [Duration; 3],
    laps: u64,
}

impl PhaseProfiler {
    /// A profiler that records nothing (the default).
    pub fn disabled() -> Self {
        PhaseProfiler::default()
    }

    /// A profiler that attributes wall time to each phase.
    pub fn enabled() -> Self {
        PhaseProfiler { enabled: true, ..PhaseProfiler::default() }
    }

    /// Whether this profiler records time.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a lap sequence: returns a timing token, or `None` when
    /// disabled (no clock is read).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Attributes the time since the token to `phase` and re-arms the
    /// token. No-op (and no clock read) when the token is `None`.
    #[inline]
    pub fn lap(&mut self, phase: SimPhase, token: &mut Option<Instant>) {
        if let Some(t) = token {
            let now = Instant::now();
            self.totals[phase.index()] += now - *t;
            *token = Some(now);
            if phase == SimPhase::Poll {
                self.laps += 1;
            }
        }
    }

    /// Attributes the time since the token to `phase` and credits the
    /// profiler with `cycles` completed laps in one go — the Δ-cycle
    /// aware form of [`PhaseProfiler::lap`] used when the fast-forward
    /// kernel covers many simulated cycles in one jump. Keeps the
    /// invariant that [`PhaseProfiler::laps`] equals the number of
    /// simulated cycles regardless of kernel.
    #[inline]
    pub fn lap_span(&mut self, phase: SimPhase, cycles: u64, token: &mut Option<Instant>) {
        if let Some(t) = token {
            let now = Instant::now();
            self.totals[phase.index()] += now - *t;
            *token = Some(now);
            self.laps += cycles;
        }
    }

    /// Accumulated wall time of `phase`.
    pub fn total(&self, phase: SimPhase) -> Duration {
        self.totals[phase.index()]
    }

    /// Sum of all phase times.
    pub fn total_wall(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Number of completed lap sequences (cycles profiled).
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Fraction of the total profiled time spent in `phase`
    /// (`None` before any time accumulates).
    pub fn fraction(&self, phase: SimPhase) -> Option<f64> {
        let total = self.total_wall().as_secs_f64();
        (total > 0.0).then(|| self.total(phase).as_secs_f64() / total)
    }

    /// Clears accumulated time (e.g. after a warm-up period) without
    /// changing the enabled state.
    pub fn reset(&mut self) {
        self.totals = [Duration::ZERO; 3];
        self.laps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_reads_no_clock_and_stays_zero() {
        let mut p = PhaseProfiler::disabled();
        let mut token = p.start();
        assert!(token.is_none());
        p.lap(SimPhase::Poll, &mut token);
        p.lap(SimPhase::Bus, &mut token);
        assert!(!p.is_enabled());
        assert_eq!(p.laps(), 0);
        assert_eq!(p.total_wall(), Duration::ZERO);
        assert_eq!(p.fraction(SimPhase::Bus), None);
    }

    #[test]
    fn laps_attribute_time_to_phases() {
        let mut p = PhaseProfiler::enabled();
        for _ in 0..3 {
            let mut token = p.start();
            std::thread::sleep(Duration::from_micros(200));
            p.lap(SimPhase::Poll, &mut token);
            p.lap(SimPhase::Bus, &mut token);
            p.lap(SimPhase::Accounting, &mut token);
        }
        assert_eq!(p.laps(), 3);
        assert!(p.total(SimPhase::Poll) >= Duration::from_micros(600));
        let total: f64 = SimPhase::ALL.iter().filter_map(|&ph| p.fraction(ph)).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to 1, got {total}");
        p.reset();
        assert_eq!(p.laps(), 0);
        assert_eq!(p.total_wall(), Duration::ZERO);
        assert!(p.is_enabled(), "reset keeps the profiler on");
    }

    #[test]
    fn lap_span_counts_skipped_cycles() {
        let mut p = PhaseProfiler::enabled();
        // One cycle-accurate lap…
        let mut token = p.start();
        p.lap(SimPhase::Poll, &mut token);
        p.lap(SimPhase::Bus, &mut token);
        p.lap(SimPhase::Accounting, &mut token);
        // …then a fast-forward jump over 499 cycles.
        let mut token = p.start();
        p.lap_span(SimPhase::Accounting, 499, &mut token);
        assert_eq!(p.laps(), 500, "laps equal simulated cycles, not steps");

        // Disabled: no clock reads, no lap counting.
        let mut off = PhaseProfiler::disabled();
        let mut token = off.start();
        off.lap_span(SimPhase::Accounting, 1_000, &mut token);
        assert_eq!(off.laps(), 0);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = SimPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["poll", "bus", "accounting"]);
    }
}
