//! Master-side bus interface: per-master transaction queues.

use crate::cycle::Cycle;
use crate::ids::MasterId;
use crate::request::Transaction;
use std::collections::VecDeque;

/// A transaction that has been issued but not yet fully transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    txn: Transaction,
    remaining: u32,
    first_grant: Option<Cycle>,
}

impl InFlight {
    /// The underlying transaction.
    pub fn transaction(&self) -> Transaction {
        self.txn
    }

    /// Words still to transfer.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Cycle at which the transaction first received a grant, if any.
    pub fn first_grant(&self) -> Option<Cycle> {
        self.first_grant
    }
}

/// A completed transaction together with its timing, reported to the
/// statistics collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The finished transaction.
    pub txn: Transaction,
    /// Cycle at which the transaction first owned the bus.
    pub first_grant: Cycle,
    /// Cycle *after* the last word transferred (exclusive end).
    pub finished_at: Cycle,
}

impl Completion {
    /// Total latency in cycles: waiting plus transfer time.
    pub fn latency(&self) -> u64 {
        self.finished_at - self.txn.issued_at()
    }

    /// Cycles spent waiting before the first word moved.
    pub fn wait(&self) -> u64 {
        self.first_grant - self.txn.issued_at()
    }
}

/// The bus-interface logic on the master side: a FIFO of outstanding
/// transactions. The head of the queue drives the master's request line.
///
/// ```
/// use socsim::{MasterPort, MasterId, Transaction, SlaveId, Cycle};
/// let mut port = MasterPort::new(MasterId::new(0), "cpu");
/// port.enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
/// assert_eq!(port.pending_words(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MasterPort {
    id: MasterId,
    name: String,
    queue: VecDeque<InFlight>,
    issued: u64,
    issued_words: u64,
}

impl MasterPort {
    /// Creates an empty port for master `id` labelled `name`.
    pub fn new(id: MasterId, name: impl Into<String>) -> Self {
        MasterPort { id, name: name.into(), queue: VecDeque::new(), issued: 0, issued_words: 0 }
    }

    /// This port's master id.
    pub fn id(&self) -> MasterId {
        self.id
    }

    /// The human-readable component name (e.g. `"cpu"`, `"port3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a newly issued transaction to the queue.
    pub fn enqueue(&mut self, txn: Transaction) {
        self.issued += 1;
        self.issued_words += u64::from(txn.words());
        self.queue.push_back(InFlight { txn, remaining: txn.words(), first_grant: None });
    }

    /// Whether the request line is asserted (any transaction outstanding).
    pub fn is_requesting(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Words remaining in the head transaction (zero when idle).
    pub fn pending_words(&self) -> u32 {
        self.queue.front().map_or(0, |f| f.remaining)
    }

    /// Slave addressed by the head transaction, if any.
    pub fn head_slave(&self) -> Option<crate::ids::SlaveId> {
        self.queue.front().map(|f| f.txn.slave())
    }

    /// Total words across all queued transactions (backlog depth).
    pub fn backlog_words(&self) -> u64 {
        self.queue.iter().map(|f| u64::from(f.remaining)).sum()
    }

    /// Number of outstanding transactions.
    pub fn backlog_transactions(&self) -> usize {
        self.queue.len()
    }

    /// Transactions issued over the port's lifetime.
    pub fn issued_transactions(&self) -> u64 {
        self.issued
    }

    /// Words issued over the port's lifetime.
    pub fn issued_words(&self) -> u64 {
        self.issued_words
    }

    /// Records that the head transaction was granted the bus at `now`
    /// (only the first grant per transaction is remembered).
    pub fn note_grant(&mut self, now: Cycle) {
        if let Some(head) = self.queue.front_mut() {
            head.first_grant.get_or_insert(now);
        }
    }

    /// Transfers `words` words of the head transaction, the last of which
    /// occupies the bus cycle `last_cycle`. Returns the completion record
    /// if the head transaction finished.
    ///
    /// # Panics
    ///
    /// Panics if the port has no outstanding transaction or `words`
    /// exceeds the head transaction's remaining words.
    pub fn transfer(&mut self, words: u32, last_cycle: Cycle) -> Option<Completion> {
        let head = self.queue.front_mut().expect("transfer on idle master");
        assert!(words <= head.remaining, "transfer exceeds remaining words");
        head.remaining -= words;
        if head.remaining == 0 {
            let done = self.queue.pop_front().expect("head exists");
            Some(Completion {
                txn: done.txn,
                first_grant: done.first_grant.expect("granted before completion"),
                finished_at: last_cycle + 1,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlaveId;

    fn txn(words: u32, at: u64) -> Transaction {
        Transaction::new(SlaveId::new(0), words, Cycle::new(at))
    }

    #[test]
    fn fifo_order_and_partial_transfer() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(4, 0));
        port.enqueue(txn(2, 1));
        assert_eq!(port.pending_words(), 4);
        assert_eq!(port.backlog_words(), 6);
        port.note_grant(Cycle::new(3));
        assert!(port.transfer(3, Cycle::new(5)).is_none());
        assert_eq!(port.pending_words(), 1);
        let done = port.transfer(1, Cycle::new(6)).expect("completes");
        assert_eq!(done.latency(), 7); // issued at 0, last word in cycle 6
        assert_eq!(done.wait(), 3);
        assert_eq!(port.pending_words(), 2); // second transaction now head
    }

    #[test]
    fn first_grant_is_sticky() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(8, 0));
        port.note_grant(Cycle::new(2));
        port.transfer(4, Cycle::new(5)).map(|_| ()).unwrap_or(());
        port.note_grant(Cycle::new(9)); // re-grant of same transaction
        let done = port.transfer(4, Cycle::new(12)).expect("completes");
        assert_eq!(done.first_grant, Cycle::new(2));
    }

    #[test]
    fn issue_counters_accumulate() {
        let mut port = MasterPort::new(MasterId::new(1), "m1");
        port.enqueue(txn(4, 0));
        port.enqueue(txn(6, 0));
        assert_eq!(port.issued_transactions(), 2);
        assert_eq!(port.issued_words(), 10);
        assert_eq!(port.backlog_transactions(), 2);
    }

    #[test]
    #[should_panic(expected = "idle master")]
    fn transfer_on_idle_panics() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        let _ = port.transfer(1, Cycle::ZERO);
    }
}
