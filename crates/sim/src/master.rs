//! Master-side bus interface: per-master transaction queues.

use crate::cycle::Cycle;
use crate::fault::RetryPolicy;
use crate::ids::MasterId;
use crate::request::Transaction;
use std::collections::VecDeque;

/// A transaction that has been issued but not yet fully transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    txn: Transaction,
    remaining: u32,
    first_grant: Option<Cycle>,
    /// Failed attempts (slave errors) so far.
    attempts: u32,
    /// When the watchdog started observing this transaction at the
    /// queue head (re-armed after each retry backoff).
    watch_since: Option<Cycle>,
}

impl InFlight {
    /// The underlying transaction.
    pub fn transaction(&self) -> Transaction {
        self.txn
    }

    /// Words still to transfer.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Cycle at which the transaction first received a grant, if any.
    pub fn first_grant(&self) -> Option<Cycle> {
        self.first_grant
    }

    /// Failed (error-response) attempts so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

/// What happened to a transaction after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// The transaction stays queued and may request again at `resume_at`.
    Retry {
        /// Failed attempts so far (1-based).
        attempt: u32,
        /// First cycle at which the request line re-asserts.
        resume_at: Cycle,
    },
    /// The transaction exhausted its retries and was dropped.
    Aborted {
        /// Total failed attempts.
        attempts: u32,
    },
}

/// A completed transaction together with its timing, reported to the
/// statistics collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The finished transaction.
    pub txn: Transaction,
    /// Cycle at which the transaction first owned the bus.
    pub first_grant: Cycle,
    /// Cycle *after* the last word transferred (exclusive end).
    pub finished_at: Cycle,
}

impl Completion {
    /// Total latency in cycles: waiting plus transfer time.
    pub fn latency(&self) -> u64 {
        self.finished_at - self.txn.issued_at()
    }

    /// Cycles spent waiting before the first word moved.
    pub fn wait(&self) -> u64 {
        self.first_grant - self.txn.issued_at()
    }
}

/// The bus-interface logic on the master side: a FIFO of outstanding
/// transactions. The head of the queue drives the master's request line.
///
/// ```
/// use socsim::{MasterPort, MasterId, Transaction, SlaveId, Cycle};
/// let mut port = MasterPort::new(MasterId::new(0), "cpu");
/// port.enqueue(Transaction::new(SlaveId::new(0), 2, Cycle::ZERO));
/// assert_eq!(port.pending_words(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MasterPort {
    id: MasterId,
    name: String,
    queue: VecDeque<InFlight>,
    issued: u64,
    issued_words: u64,
    /// First cycle at which an injected master stall ends.
    stall_until: Option<Cycle>,
    /// First cycle at which the head transaction's retry backoff ends.
    backoff_until: Option<Cycle>,
}

impl MasterPort {
    /// Creates an empty port for master `id` labelled `name`.
    pub fn new(id: MasterId, name: impl Into<String>) -> Self {
        MasterPort {
            id,
            name: name.into(),
            queue: VecDeque::new(),
            issued: 0,
            issued_words: 0,
            stall_until: None,
            backoff_until: None,
        }
    }

    /// This port's master id.
    #[inline]
    pub fn id(&self) -> MasterId {
        self.id
    }

    /// The human-readable component name (e.g. `"cpu"`, `"port3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a newly issued transaction to the queue.
    #[inline]
    pub fn enqueue(&mut self, txn: Transaction) {
        self.issued += 1;
        self.issued_words += u64::from(txn.words());
        self.queue.push_back(InFlight {
            txn,
            remaining: txn.words(),
            first_grant: None,
            attempts: 0,
            watch_since: None,
        });
    }

    /// Whether the request line is asserted (any transaction outstanding).
    #[inline]
    pub fn is_requesting(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Like [`MasterPort::is_requesting`], but accounting for injected
    /// master stalls and retry backoff: the request line is held
    /// deasserted until both have elapsed. Used only on fault-enabled
    /// buses; without faults neither is ever set, so this matches
    /// [`MasterPort::is_requesting`] exactly.
    #[inline]
    pub fn is_requesting_at(&self, now: Cycle) -> bool {
        !self.queue.is_empty() && self.eligible_at(now)
    }

    #[inline]
    fn eligible_at(&self, now: Cycle) -> bool {
        self.stall_until.is_none_or(|until| now >= until)
            && self.backoff_until.is_none_or(|until| now >= until)
    }

    /// Whether an injected stall is still in effect at `now`.
    pub fn is_stalled_at(&self, now: Cycle) -> bool {
        self.stall_until.is_some_and(|until| now < until)
    }

    /// Holds the request line deasserted until `until` (an injected
    /// master stall).
    pub fn set_stall(&mut self, until: Cycle) {
        self.stall_until = Some(until);
    }

    /// Watchdog bookkeeping: observes how long the head transaction
    /// has been wedged. Arms the watch when the head first becomes
    /// eligible and returns the cycles waited since; returns `None`
    /// while there is nothing eligible to watch.
    pub fn head_wait(&mut self, now: Cycle) -> Option<u64> {
        if !self.eligible_at(now) {
            return None;
        }
        let head = self.queue.front_mut()?;
        let since = *head.watch_since.get_or_insert(now);
        Some(now - since)
    }

    /// Records a failed attempt (slave error response) on the head
    /// transaction and applies `policy`: either the transaction stays
    /// queued behind an exponential backoff, or it exhausted its
    /// retries and is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the port has no outstanding transaction.
    pub fn fail_attempt(&mut self, now: Cycle, policy: &RetryPolicy) -> RetryOutcome {
        let head = self.queue.front_mut().expect("fail_attempt on idle master");
        head.attempts += 1;
        let attempts = head.attempts;
        if attempts > policy.max_retries {
            self.queue.pop_front();
            self.backoff_until = None;
            RetryOutcome::Aborted { attempts }
        } else {
            let resume_at = now + 1 + policy.backoff_after(attempts);
            head.watch_since = None;
            self.backoff_until = Some(resume_at);
            RetryOutcome::Retry { attempt: attempts, resume_at }
        }
    }

    /// Drops the head transaction (watchdog abort). Returns the
    /// abandoned record, or `None` if the queue was empty.
    pub fn abort_head(&mut self) -> Option<InFlight> {
        self.backoff_until = None;
        self.queue.pop_front()
    }

    /// Words remaining in the head transaction (zero when idle).
    #[inline]
    pub fn pending_words(&self) -> u32 {
        self.queue.front().map_or(0, |f| f.remaining)
    }

    /// Slave addressed by the head transaction, if any.
    #[inline]
    pub fn head_slave(&self) -> Option<crate::ids::SlaveId> {
        self.queue.front().map(|f| f.txn.slave())
    }

    /// Total words across all queued transactions (backlog depth).
    pub fn backlog_words(&self) -> u64 {
        self.queue.iter().map(|f| u64::from(f.remaining)).sum()
    }

    /// Number of outstanding transactions.
    #[inline]
    pub fn backlog_transactions(&self) -> usize {
        self.queue.len()
    }

    /// Transactions issued over the port's lifetime.
    pub fn issued_transactions(&self) -> u64 {
        self.issued
    }

    /// Words issued over the port's lifetime.
    pub fn issued_words(&self) -> u64 {
        self.issued_words
    }

    /// The fast-forward horizon of this port at `now`: the earliest
    /// cycle at which its request line can (re-)assert.
    ///
    /// * Empty queue → [`Cycle::NEVER`]: the port stays silent until a
    ///   traffic source hands it a transaction (the source's own
    ///   horizon bounds that separately).
    /// * Non-empty and eligible → `now`: the request is live, nothing
    ///   may be skipped.
    /// * Non-empty but held back by an injected stall and/or retry
    ///   backoff → the cycle at which the **last** of those holds
    ///   expires, which is exactly when the request line re-asserts.
    ///
    /// Only valid for buses without master-stall injection; with a
    /// nonzero stall rate the fault layer draws per cycle and
    /// [`MasterPort::next_event_under_stall_faults`] applies instead.
    #[inline]
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if self.queue.is_empty() {
            return Cycle::NEVER;
        }
        if self.eligible_at(now) {
            return now;
        }
        let stall = self.stall_until.unwrap_or(Cycle::ZERO);
        let backoff = self.backoff_until.unwrap_or(Cycle::ZERO);
        stall.max(backoff)
    }

    /// The fast-forward horizon of this port when the fault plan draws
    /// per-cycle master stalls (`master_stall_rate > 0`).
    ///
    /// The fault layer's stall lottery fires every cycle in which the
    /// port is requesting and **not** already stalled — those draws
    /// consume the (deterministic, cycle-keyed) fault stream, so the
    /// kernel must not skip them. While a stall is in effect no draw
    /// happens, so the stall's expiry is a safe horizon even if a retry
    /// backoff stretches further: the draw at expiry must be replayed
    /// at its exact cycle.
    pub fn next_event_under_stall_faults(&self, now: Cycle) -> Cycle {
        if self.queue.is_empty() {
            return Cycle::NEVER;
        }
        match self.stall_until {
            Some(until) if now < until => until,
            _ => now,
        }
    }

    /// Records that the head transaction was granted the bus at `now`
    /// (only the first grant per transaction is remembered).
    #[inline]
    pub fn note_grant(&mut self, now: Cycle) {
        if let Some(head) = self.queue.front_mut() {
            head.first_grant.get_or_insert(now);
        }
    }

    /// Transfers `words` words of the head transaction, the last of which
    /// occupies the bus cycle `last_cycle`. Returns the completion record
    /// if the head transaction finished.
    ///
    /// # Panics
    ///
    /// Panics if the port has no outstanding transaction or `words`
    /// exceeds the head transaction's remaining words.
    #[inline]
    pub fn transfer(&mut self, words: u32, last_cycle: Cycle) -> Option<Completion> {
        let head = self.queue.front_mut().expect("transfer on idle master");
        assert!(words <= head.remaining, "transfer exceeds remaining words");
        head.remaining -= words;
        // Progress re-arms the watchdog: it measures time wedged, not
        // total queue-head residency.
        head.watch_since = None;
        if head.remaining == 0 {
            let done = self.queue.pop_front().expect("head exists");
            Some(Completion {
                txn: done.txn,
                first_grant: done.first_grant.expect("granted before completion"),
                finished_at: last_cycle + 1,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlaveId;

    fn txn(words: u32, at: u64) -> Transaction {
        Transaction::new(SlaveId::new(0), words, Cycle::new(at))
    }

    #[test]
    fn fifo_order_and_partial_transfer() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(4, 0));
        port.enqueue(txn(2, 1));
        assert_eq!(port.pending_words(), 4);
        assert_eq!(port.backlog_words(), 6);
        port.note_grant(Cycle::new(3));
        assert!(port.transfer(3, Cycle::new(5)).is_none());
        assert_eq!(port.pending_words(), 1);
        let done = port.transfer(1, Cycle::new(6)).expect("completes");
        assert_eq!(done.latency(), 7); // issued at 0, last word in cycle 6
        assert_eq!(done.wait(), 3);
        assert_eq!(port.pending_words(), 2); // second transaction now head
    }

    #[test]
    fn first_grant_is_sticky() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(8, 0));
        port.note_grant(Cycle::new(2));
        port.transfer(4, Cycle::new(5)).map(|_| ()).unwrap_or(());
        port.note_grant(Cycle::new(9)); // re-grant of same transaction
        let done = port.transfer(4, Cycle::new(12)).expect("completes");
        assert_eq!(done.first_grant, Cycle::new(2));
    }

    #[test]
    fn issue_counters_accumulate() {
        let mut port = MasterPort::new(MasterId::new(1), "m1");
        port.enqueue(txn(4, 0));
        port.enqueue(txn(6, 0));
        assert_eq!(port.issued_transactions(), 2);
        assert_eq!(port.issued_words(), 10);
        assert_eq!(port.backlog_transactions(), 2);
    }

    #[test]
    #[should_panic(expected = "idle master")]
    fn transfer_on_idle_panics() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        let _ = port.transfer(1, Cycle::ZERO);
    }

    #[test]
    fn retry_backoff_deasserts_request_line() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(4, 0));
        let policy = RetryPolicy::exponential(2, 2);
        let outcome = port.fail_attempt(Cycle::new(5), &policy);
        assert_eq!(outcome, RetryOutcome::Retry { attempt: 1, resume_at: Cycle::new(8) });
        // Backoff: deasserted until cycle 8, reasserted from then on.
        assert!(!port.is_requesting_at(Cycle::new(6)));
        assert!(port.is_requesting_at(Cycle::new(8)));
        assert!(port.is_requesting(), "plain request line ignores backoff");
    }

    #[test]
    fn exhausted_retries_abort_the_transaction() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(4, 0));
        port.enqueue(txn(2, 0));
        let policy = RetryPolicy::exponential(1, 1);
        assert!(matches!(port.fail_attempt(Cycle::new(0), &policy), RetryOutcome::Retry { .. }));
        let outcome = port.fail_attempt(Cycle::new(3), &policy);
        assert_eq!(outcome, RetryOutcome::Aborted { attempts: 2 });
        // The second transaction moved up and requests normally.
        assert_eq!(port.pending_words(), 2);
        assert!(port.is_requesting_at(Cycle::new(4)));
    }

    #[test]
    fn injected_stall_expires() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(txn(1, 0));
        port.set_stall(Cycle::new(10));
        assert!(port.is_stalled_at(Cycle::new(9)));
        assert!(!port.is_requesting_at(Cycle::new(9)));
        assert!(!port.is_stalled_at(Cycle::new(10)));
        assert!(port.is_requesting_at(Cycle::new(10)));
    }

    #[test]
    fn next_event_tracks_request_line_state() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        // Idle port: nothing scheduled.
        assert_eq!(port.next_event(Cycle::new(5)), Cycle::NEVER);
        assert_eq!(port.next_event_under_stall_faults(Cycle::new(5)), Cycle::NEVER);
        // Live request: unskippable.
        port.enqueue(txn(4, 0));
        assert_eq!(port.next_event(Cycle::new(5)), Cycle::new(5));
        assert_eq!(port.next_event_under_stall_faults(Cycle::new(5)), Cycle::new(5));
        // Stalled: wakes when the stall expires.
        port.set_stall(Cycle::new(20));
        assert_eq!(port.next_event(Cycle::new(5)), Cycle::new(20));
        assert_eq!(port.next_event_under_stall_faults(Cycle::new(5)), Cycle::new(20));
        // A backoff that outlasts the stall moves the plain horizon but
        // not the stall-fault one (the stall-expiry draw must replay).
        let policy = RetryPolicy::exponential(4, 30);
        port.fail_attempt(Cycle::new(5), &policy);
        assert_eq!(port.next_event(Cycle::new(5)), Cycle::new(36));
        assert_eq!(port.next_event_under_stall_faults(Cycle::new(5)), Cycle::new(20));
        // Expired holds collapse back to "request live".
        assert_eq!(port.next_event(Cycle::new(40)), Cycle::new(40));
        assert_eq!(port.next_event_under_stall_faults(Cycle::new(40)), Cycle::new(40));
    }

    #[test]
    fn head_wait_arms_lazily_and_rearms_after_retry() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        assert_eq!(port.head_wait(Cycle::new(0)), None);
        port.enqueue(txn(4, 0));
        assert_eq!(port.head_wait(Cycle::new(3)), Some(0));
        assert_eq!(port.head_wait(Cycle::new(7)), Some(4));
        // A retry resets the watch; during backoff nothing is watched.
        let policy = RetryPolicy::exponential(4, 4);
        port.fail_attempt(Cycle::new(7), &policy);
        assert_eq!(port.head_wait(Cycle::new(8)), None);
        assert_eq!(port.head_wait(Cycle::new(12)), Some(0));
        assert_eq!(port.head_wait(Cycle::new(20)), Some(8));
    }
}
