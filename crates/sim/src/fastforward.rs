//! Event horizons for the fast-forward kernel.
//!
//! The cycle-accurate kernel pays full per-cycle cost even when every
//! master is between bursts — exactly the idle gaps the paper's
//! low-duty-cycle traffic classes create. The fast-forward kernel
//! (enabled with [`crate::SystemBuilder::fast_forward`]) closes those
//! gaps in one jump: each step it computes the **event horizon** — the
//! earliest future cycle at which any component does something that
//! batched accounting cannot replicate — and, when the bus is idle and
//! no request is live, advances time straight to that horizon.
//!
//! # The horizon contract
//!
//! [`NextEvent::next_event`] returns the earliest cycle `>= now` at
//! which the component acts in a way the skip path cannot reproduce
//! arithmetically. Three values matter:
//!
//! * `now` — "do not skip over me". The conservative answer, and the
//!   default for any component the kernel does not know; it degrades
//!   the fast kernel to the cycle kernel but can never change results.
//! * a future cycle — nothing interesting happens strictly before it,
//!   so the kernel may jump to `min` over all horizons (clamped by the
//!   run's end).
//! * [`Cycle::NEVER`] — nothing is scheduled at all; the component is
//!   ignored by the `min`.
//!
//! What *is* replicated arithmetically during a skip of `delta` idle
//! cycles (see `System::skip_to`): the idle cycle counter, per-cycle
//! idle trace events, windowed-metrics gauge sampling and window
//! closes, profiler laps, and each arbiter's empty-map decision state
//! (via [`crate::Arbiter::skip_idle`]). Everything else must be pinned
//! by a horizon.
//!
//! The differential harness in `tests/kernel_equivalence.rs` and the
//! proptest properties in `tests/proptest_invariants.rs` hold the two
//! kernels to byte-identical statistics, metrics, and traces.

use crate::cycle::Cycle;
use crate::fault::FaultPlan;
use crate::master::MasterPort;
use crate::slave::Slave;

/// Which simulation kernel drives [`crate::System::run`].
///
/// All three kernels share the per-cycle [`crate::System::step`] as
/// their ground truth; they differ only in which spans of cycles they
/// replace with batched arithmetic:
///
/// * [`Kernel::Cycle`] — steps every cycle. The reference kernel.
/// * [`Kernel::Fast`] — additionally jumps over provably idle gaps
///   (see the module docs). Byte-exact for every system.
/// * [`Kernel::Tlm`] — additionally models each uncontended bus tenure
///   as one event (`System::skip_tenure`): once a grant is issued, the
///   stall and burst cycles it implies are replayed arithmetically up
///   to the next component horizon. Byte-exact when every traffic
///   source announces true future horizons (periodic, on–off/burst,
///   replay, silent); *approximate* for sources that must be polled
///   every cycle (Bernoulli/Poisson, saturate probes), whose polls are
///   deferred to the next arbitration boundary. Tenure skipping
///   disables itself (degrading to [`Kernel::Fast`], which is exact)
///   when fault injection or windowed metrics are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Cycle-accurate reference kernel.
    #[default]
    Cycle,
    /// Idle-skipping event kernel (PR-4 fast-forward).
    Fast,
    /// Transaction-level kernel: idle skipping plus tenure batching.
    Tlm,
}

impl Kernel {
    /// Parses a kernel name as used by CLI flags and spec files.
    pub fn parse(name: &str) -> Option<Kernel> {
        match name {
            "cycle" => Some(Kernel::Cycle),
            "fast" => Some(Kernel::Fast),
            "tlm" => Some(Kernel::Tlm),
            _ => None,
        }
    }

    /// The canonical lowercase name (`cycle`, `fast`, `tlm`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cycle => "cycle",
            Kernel::Fast => "fast",
            Kernel::Tlm => "tlm",
        }
    }

    /// Whether the kernel jumps over idle gaps.
    pub fn skips_idle(self) -> bool {
        !matches!(self, Kernel::Cycle)
    }

    /// Whether the kernel batches uncontended bus tenures.
    pub fn skips_tenures(self) -> bool {
        matches!(self, Kernel::Tlm)
    }
}

/// The event-horizon interface of the fast-forward kernel.
///
/// Implemented by the passive simulation components (master ports,
/// slaves, fault plans); arbiters and traffic sources carry equivalent
/// `next_event` methods directly on their own traits, because those are
/// object-safe extension points with per-protocol overrides.
pub trait NextEvent {
    /// The earliest cycle `>= now` at which this component does
    /// something the skip path cannot replicate, or [`Cycle::NEVER`] if
    /// nothing is scheduled. Returning `now` forbids skipping.
    fn next_event(&self, now: Cycle) -> Cycle;
}

impl NextEvent for MasterPort {
    /// Delegates to [`MasterPort::next_event`]: `NEVER` for an idle
    /// port, `now` for a live request, the hold expiry for a port held
    /// back by stall/backoff. Buses that draw per-cycle master stalls
    /// must use [`MasterPort::next_event_under_stall_faults`] instead
    /// (the kernel selects the right one from the fault config).
    fn next_event(&self, now: Cycle) -> Cycle {
        MasterPort::next_event(self, now)
    }
}

impl NextEvent for Slave {
    /// Slaves are stateless responders: wait states are applied at
    /// grant time (when the bus is busy, hence never skipped), and
    /// injected slave errors/outages are drawn from the cycle-keyed
    /// fault stream at grant time too. Nothing is ever scheduled.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

impl NextEvent for FaultPlan {
    /// A fault plan is a pure function of `(seed, cycle, stream,
    /// actor)` — it keeps no per-cycle state, so skipping cycles can
    /// never desynchronize its draws. The one per-cycle draw it feeds
    /// (the master-stall lottery) is gated on port state and is pinned
    /// by [`MasterPort::next_event_under_stall_faults`], not here.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

/// Folds a component horizon into an accumulated minimum, saturating at
/// `now` (horizons in the past mean "cannot skip", not "skip backwards").
pub fn fold_horizon(acc: Cycle, component: Cycle, now: Cycle) -> Cycle {
    acc.min(component.max(now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::ids::{MasterId, SlaveId};
    use crate::request::Transaction;

    #[test]
    fn passive_components_report_never() {
        let slave = Slave::new(SlaveId::new(0), "mem");
        assert_eq!(NextEvent::next_event(&slave, Cycle::new(3)), Cycle::NEVER);
        let plan = FaultPlan::new(FaultConfig { slave_error_rate: 0.5, ..FaultConfig::default() });
        assert_eq!(NextEvent::next_event(&plan, Cycle::new(3)), Cycle::NEVER);
    }

    #[test]
    fn port_horizon_via_trait_matches_inherent_method() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(Transaction::new(SlaveId::new(0), 4, Cycle::ZERO));
        let now = Cycle::new(7);
        assert_eq!(NextEvent::next_event(&port, now), MasterPort::next_event(&port, now));
    }

    #[test]
    fn kernel_names_round_trip_and_unknowns_are_rejected() {
        for k in [Kernel::Cycle, Kernel::Fast, Kernel::Tlm] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("turbo"), None);
        assert_eq!(Kernel::parse("TLM"), None, "names are case-sensitive");
        assert_eq!(Kernel::default(), Kernel::Cycle);
        assert!(!Kernel::Cycle.skips_idle());
        assert!(Kernel::Fast.skips_idle() && !Kernel::Fast.skips_tenures());
        assert!(Kernel::Tlm.skips_idle() && Kernel::Tlm.skips_tenures());
    }

    #[test]
    fn fold_clamps_stale_horizons_to_now() {
        let now = Cycle::new(100);
        // A component reporting a past cycle pins the horizon to `now`.
        assert_eq!(fold_horizon(Cycle::NEVER, Cycle::new(3), now), now);
        // Future horizons fold by minimum.
        let acc = fold_horizon(Cycle::NEVER, Cycle::new(400), now);
        assert_eq!(fold_horizon(acc, Cycle::new(250), now), Cycle::new(250));
        // NEVER never tightens the fold.
        assert_eq!(fold_horizon(acc, Cycle::NEVER, now), Cycle::new(400));
    }
}
