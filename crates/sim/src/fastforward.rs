//! Event horizons for the fast-forward kernel.
//!
//! The cycle-accurate kernel pays full per-cycle cost even when every
//! master is between bursts — exactly the idle gaps the paper's
//! low-duty-cycle traffic classes create. The fast-forward kernel
//! (enabled with [`crate::SystemBuilder::fast_forward`]) closes those
//! gaps in one jump: each step it computes the **event horizon** — the
//! earliest future cycle at which any component does something that
//! batched accounting cannot replicate — and, when the bus is idle and
//! no request is live, advances time straight to that horizon.
//!
//! # The horizon contract
//!
//! [`NextEvent::next_event`] returns the earliest cycle `>= now` at
//! which the component acts in a way the skip path cannot reproduce
//! arithmetically. Three values matter:
//!
//! * `now` — "do not skip over me". The conservative answer, and the
//!   default for any component the kernel does not know; it degrades
//!   the fast kernel to the cycle kernel but can never change results.
//! * a future cycle — nothing interesting happens strictly before it,
//!   so the kernel may jump to `min` over all horizons (clamped by the
//!   run's end).
//! * [`Cycle::NEVER`] — nothing is scheduled at all; the component is
//!   ignored by the `min`.
//!
//! What *is* replicated arithmetically during a skip of `delta` idle
//! cycles (see `System::skip_to`): the idle cycle counter, per-cycle
//! idle trace events, windowed-metrics gauge sampling and window
//! closes, profiler laps, and each arbiter's empty-map decision state
//! (via [`crate::Arbiter::skip_idle`]). Everything else must be pinned
//! by a horizon.
//!
//! The differential harness in `tests/kernel_equivalence.rs` and the
//! proptest properties in `tests/proptest_invariants.rs` hold the two
//! kernels to byte-identical statistics, metrics, and traces.

use crate::cycle::Cycle;
use crate::fault::FaultPlan;
use crate::master::MasterPort;
use crate::slave::Slave;

/// The event-horizon interface of the fast-forward kernel.
///
/// Implemented by the passive simulation components (master ports,
/// slaves, fault plans); arbiters and traffic sources carry equivalent
/// `next_event` methods directly on their own traits, because those are
/// object-safe extension points with per-protocol overrides.
pub trait NextEvent {
    /// The earliest cycle `>= now` at which this component does
    /// something the skip path cannot replicate, or [`Cycle::NEVER`] if
    /// nothing is scheduled. Returning `now` forbids skipping.
    fn next_event(&self, now: Cycle) -> Cycle;
}

impl NextEvent for MasterPort {
    /// Delegates to [`MasterPort::next_event`]: `NEVER` for an idle
    /// port, `now` for a live request, the hold expiry for a port held
    /// back by stall/backoff. Buses that draw per-cycle master stalls
    /// must use [`MasterPort::next_event_under_stall_faults`] instead
    /// (the kernel selects the right one from the fault config).
    fn next_event(&self, now: Cycle) -> Cycle {
        MasterPort::next_event(self, now)
    }
}

impl NextEvent for Slave {
    /// Slaves are stateless responders: wait states are applied at
    /// grant time (when the bus is busy, hence never skipped), and
    /// injected slave errors/outages are drawn from the cycle-keyed
    /// fault stream at grant time too. Nothing is ever scheduled.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

impl NextEvent for FaultPlan {
    /// A fault plan is a pure function of `(seed, cycle, stream,
    /// actor)` — it keeps no per-cycle state, so skipping cycles can
    /// never desynchronize its draws. The one per-cycle draw it feeds
    /// (the master-stall lottery) is gated on port state and is pinned
    /// by [`MasterPort::next_event_under_stall_faults`], not here.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

/// Folds a component horizon into an accumulated minimum, saturating at
/// `now` (horizons in the past mean "cannot skip", not "skip backwards").
pub fn fold_horizon(acc: Cycle, component: Cycle, now: Cycle) -> Cycle {
    acc.min(component.max(now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::ids::{MasterId, SlaveId};
    use crate::request::Transaction;

    #[test]
    fn passive_components_report_never() {
        let slave = Slave::new(SlaveId::new(0), "mem");
        assert_eq!(NextEvent::next_event(&slave, Cycle::new(3)), Cycle::NEVER);
        let plan = FaultPlan::new(FaultConfig { slave_error_rate: 0.5, ..FaultConfig::default() });
        assert_eq!(NextEvent::next_event(&plan, Cycle::new(3)), Cycle::NEVER);
    }

    #[test]
    fn port_horizon_via_trait_matches_inherent_method() {
        let mut port = MasterPort::new(MasterId::new(0), "m0");
        port.enqueue(Transaction::new(SlaveId::new(0), 4, Cycle::ZERO));
        let now = Cycle::new(7);
        assert_eq!(NextEvent::next_event(&port, now), MasterPort::next_event(&port, now));
    }

    #[test]
    fn fold_clamps_stale_horizons_to_now() {
        let now = Cycle::new(100);
        // A component reporting a past cycle pins the horizon to `now`.
        assert_eq!(fold_horizon(Cycle::NEVER, Cycle::new(3), now), now);
        // Future horizons fold by minimum.
        let acc = fold_horizon(Cycle::NEVER, Cycle::new(400), now);
        assert_eq!(fold_horizon(acc, Cycle::new(250), now), Cycle::new(250));
        // NEVER never tightens the fold.
        assert_eq!(fold_horizon(acc, Cycle::NEVER, now), Cycle::new(400));
    }
}
