//! Identifiers for bus components.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a bus master (a component that can initiate transactions,
/// e.g. a CPU, DSP or DMA controller).
///
/// Masters are numbered densely from zero in the order they are added to a
/// [`crate::SystemBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MasterId(usize);

impl MasterId {
    /// Creates a master id from its dense index.
    pub fn new(index: usize) -> Self {
        MasterId(index)
    }

    /// Returns the dense index of this master.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Identifies a bus slave (a component that only responds to transactions,
/// e.g. an on-chip memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlaveId(usize);

impl SlaveId {
    /// Creates a slave id from its dense index.
    pub fn new(index: usize) -> Self {
        SlaveId(index)
    }

    /// Returns the dense index of this slave.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_id_round_trips() {
        assert_eq!(MasterId::new(3).index(), 3);
        assert_eq!(MasterId::new(3).to_string(), "M3");
    }

    #[test]
    fn slave_id_round_trips() {
        assert_eq!(SlaveId::new(1).index(), 1);
        assert_eq!(SlaveId::new(1).to_string(), "S1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(MasterId::new(0) < MasterId::new(1));
        assert!(SlaveId::new(2) > SlaveId::new(0));
    }
}
