#![deny(missing_docs)]
//! # socsim — a cycle-based system-on-chip shared-bus simulation kernel
//!
//! This crate is the simulation substrate for the LOTTERYBUS reproduction.
//! It models a single shared on-chip bus in the style used by the paper's
//! PTOLEMY/POLIS test-bed: a set of *masters* issue multi-word
//! transactions addressed to *slaves*, a pluggable *arbiter* decides which
//! pending master owns the bus, and transfers proceed at one word per bus
//! cycle with a configurable maximum burst size. Arbitration is pipelined
//! with data transfer so that (by default) no bus cycles are lost to the
//! arbiter itself.
//!
//! The kernel is deterministic: given the same traffic sources and
//! arbiter it produces the same cycle-by-cycle schedule, which makes
//! experiments exactly reproducible. Each [`System`] is single-threaded
//! by construction, but independent systems share nothing — the
//! [`pool`] module fans whole simulations out across cores and collects
//! results in input order, so parallel sweeps stay byte-identical to
//! serial ones.
//!
//! Observability is layered on top without disturbing determinism: the
//! [`metrics`] module samples windowed counters/gauges/histograms into
//! time-series, the [`trace`] module streams events into pluggable
//! sinks (ring buffer, JSON lines, VCD), and the [`profile`] module
//! attributes wall-clock time to the kernel's simulation phases. All
//! three are off by default and cost at most a branch per cycle when
//! off.
//!
//! ## Quick example
//!
//! ```
//! use socsim::{BusConfig, SystemBuilder, Transaction, TrafficSource, Cycle, MasterId, SlaveId};
//!
//! /// A toy source that issues one 4-word transaction every 10 cycles.
//! struct Every10;
//! impl TrafficSource for Every10 {
//!     fn poll(&mut self, now: Cycle) -> Option<Transaction> {
//!         (now.index() % 10 == 0).then(|| Transaction::new(SlaveId::new(0), 4, now))
//!     }
//! }
//!
//! # fn main() -> Result<(), socsim::BuildSystemError> {
//! let mut system = SystemBuilder::new(BusConfig::default())
//!     .master("cpu", Every10)
//!     .master("dsp", Every10)
//!     .arbiter(socsim::arbiter::FixedOrderArbiter::new(2))
//!     .build()?;
//! let stats = system.run(1_000);
//! assert!(stats.bus_utilization() > 0.5);
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
pub mod bus;
pub mod config;
pub mod cycle;
pub mod error;
pub mod fastforward;
pub mod fault;
pub mod fleet;
pub mod ids;
pub mod master;
pub mod metrics;
pub mod multichannel;
pub mod pool;
pub mod profile;
pub mod request;
pub mod slave;
pub mod split;
pub mod stats;
pub mod system;
pub mod trace;
pub mod vcd;

pub use arbiter::{Arbiter, Grant, IntoArbiter, SoaKernel, WheelWalk};
pub use bus::Bus;
pub use config::BusConfig;
pub use cycle::Cycle;
pub use error::BuildSystemError;
pub use fastforward::{Kernel, NextEvent};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultLog, FaultPlan, RetryPolicy};
pub use fleet::{Fleet, FleetBuildError, LaneBuilder};
pub use ids::{MasterId, SlaveId};
pub use master::{MasterPort, RetryOutcome};
pub use metrics::{BusMetrics, WindowSample};
pub use profile::{PhaseProfiler, SimPhase};
pub use request::{RequestMap, Transaction, MAX_MASTERS};
pub use slave::Slave;
pub use stats::{BusStats, MasterStats};
pub use system::{IntoSource, System, SystemBuilder, TrafficSource};
pub use trace::{BusTrace, JsonlSink, RingSink, TraceEvent, TraceSink};
pub use vcd::VcdSink;
