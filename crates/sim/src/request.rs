//! Transactions and the per-cycle request map presented to arbiters.

use crate::cycle::Cycle;
use crate::ids::{MasterId, SlaveId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of masters a single bus supports.
///
/// The request map is a fixed-size bitmap so that arbiters can be called
/// every cycle without allocating.
pub const MAX_MASTERS: usize = 32;

/// A multi-word communication transaction issued by a master.
///
/// A transaction requests the transfer of `words` bus words to or from a
/// slave. The bus serves it in one or more bursts, each bounded by the
/// bus's maximum burst size.
///
/// ```
/// use socsim::{Transaction, SlaveId, Cycle};
/// let t = Transaction::new(SlaveId::new(0), 16, Cycle::new(5));
/// assert_eq!(t.words(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    slave: SlaveId,
    words: u32,
    issued_at: Cycle,
}

impl Transaction {
    /// Creates a transaction of `words` bus words addressed to `slave`,
    /// issued at `issued_at`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero — the bus cannot transfer empty
    /// transactions.
    #[inline]
    pub fn new(slave: SlaveId, words: u32, issued_at: Cycle) -> Self {
        assert!(words > 0, "a transaction must transfer at least one word");
        Transaction { slave, words, issued_at }
    }

    /// The slave this transaction addresses.
    pub fn slave(&self) -> SlaveId {
        self.slave
    }

    /// Total number of bus words the transaction transfers.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// The cycle at which the master issued (requested) the transaction.
    pub fn issued_at(&self) -> Cycle {
        self.issued_at
    }
}

/// Snapshot of all pending bus requests at one cycle, as seen by an
/// [`crate::Arbiter`].
///
/// For each master the map records whether its request line is asserted
/// and, if so, how many words its head transaction still needs. This is
/// the `r_1 r_2 … r_n` request vector of the paper plus the burst-length
/// hint real bus interfaces expose to the arbiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMap {
    bits: u32,
    masters: usize,
    pending_words: [u32; MAX_MASTERS],
}

impl RequestMap {
    /// Creates an empty request map for a bus with `masters` masters.
    ///
    /// # Panics
    ///
    /// Panics if `masters` exceeds [`MAX_MASTERS`] or is zero.
    #[inline]
    pub fn new(masters: usize) -> Self {
        assert!(masters > 0, "a bus needs at least one master");
        assert!(masters <= MAX_MASTERS, "at most {MAX_MASTERS} masters supported");
        RequestMap { bits: 0, masters, pending_words: [0; MAX_MASTERS] }
    }

    /// Number of masters on the bus (pending or not).
    pub fn masters(&self) -> usize {
        self.masters
    }

    /// Asserts `master`'s request line for `words` remaining words.
    ///
    /// # Panics
    ///
    /// Panics if the master index is out of range or `words` is zero.
    #[inline]
    pub fn set_pending(&mut self, master: MasterId, words: u32) {
        assert!(master.index() < self.masters, "master index out of range");
        assert!(words > 0, "a pending request must need at least one word");
        self.bits |= 1 << master.index();
        self.pending_words[master.index()] = words;
    }

    /// Deasserts `master`'s request line.
    pub fn clear_pending(&mut self, master: MasterId) {
        if master.index() < self.masters {
            self.bits &= !(1 << master.index());
            self.pending_words[master.index()] = 0;
        }
    }

    /// Whether `master` has a pending request this cycle.
    #[inline]
    pub fn is_pending(&self, master: MasterId) -> bool {
        master.index() < self.masters && (self.bits >> master.index()) & 1 == 1
    }

    /// Words still needed by `master`'s head transaction (zero if idle).
    #[inline]
    pub fn pending_words(&self, master: MasterId) -> u32 {
        if self.is_pending(master) {
            self.pending_words[master.index()]
        } else {
            0
        }
    }

    /// The raw request bitmap `r_n … r_1` (bit *i* set ⇔ master *i*
    /// pending). This is the LUT index used by the static lottery manager.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `true` if no master is requesting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of masters currently requesting.
    #[inline]
    pub fn pending_count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the ids of all pending masters in index order.
    ///
    /// ```
    /// use socsim::{RequestMap, MasterId};
    /// let mut map = RequestMap::new(4);
    /// map.set_pending(MasterId::new(2), 8);
    /// let pending: Vec<_> = map.iter_pending().collect();
    /// assert_eq!(pending, vec![MasterId::new(2)]);
    /// ```
    pub fn iter_pending(&self) -> IterPending<'_> {
        IterPending { map: self, next: 0 }
    }

    /// Clears every request line.
    pub fn clear(&mut self) {
        self.bits = 0;
        self.pending_words = [0; MAX_MASTERS];
    }

    /// Resets the map for reuse on a bus with `masters` masters without
    /// touching the word array — the per-arbitration fast path of the
    /// bus's scratch map. Stale `pending_words` entries are unobservable
    /// because every read is gated on the request bit, and every set bit
    /// rewrites its entry.
    #[inline]
    pub(crate) fn reset_for(&mut self, masters: usize) {
        debug_assert!(masters > 0 && masters <= MAX_MASTERS);
        self.bits = 0;
        self.masters = masters;
    }
}

impl fmt::Display for RequestMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.masters).rev() {
            let bit = if (self.bits >> i) & 1 == 1 { '1' } else { '0' };
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

/// Iterator over pending master ids produced by [`RequestMap::iter_pending`].
#[derive(Debug)]
pub struct IterPending<'a> {
    map: &'a RequestMap,
    next: usize,
}

impl Iterator for IterPending<'_> {
    type Item = MasterId;

    fn next(&mut self) -> Option<MasterId> {
        while self.next < self.map.masters {
            let i = self.next;
            self.next += 1;
            if (self.map.bits >> i) & 1 == 1 {
                return Some(MasterId::new(i));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_clear_pending() {
        let mut map = RequestMap::new(4);
        assert!(map.is_empty());
        map.set_pending(MasterId::new(1), 10);
        map.set_pending(MasterId::new(3), 2);
        assert_eq!(map.bits(), 0b1010);
        assert_eq!(map.pending_count(), 2);
        assert_eq!(map.pending_words(MasterId::new(1)), 10);
        assert_eq!(map.pending_words(MasterId::new(0)), 0);
        map.clear_pending(MasterId::new(1));
        assert!(!map.is_pending(MasterId::new(1)));
        assert_eq!(map.bits(), 0b1000);
    }

    #[test]
    fn iter_pending_in_index_order() {
        let mut map = RequestMap::new(5);
        for i in [4, 0, 2] {
            map.set_pending(MasterId::new(i), 1);
        }
        let ids: Vec<_> = map.iter_pending().map(MasterId::index).collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }

    #[test]
    fn display_matches_paper_bit_order() {
        // Paper notation r1 r2 r3 r4 = 1011 means M1, M3, M4 pending; we
        // print with the highest-index master leftmost.
        let mut map = RequestMap::new(4);
        map.set_pending(MasterId::new(0), 1);
        map.set_pending(MasterId::new(2), 1);
        map.set_pending(MasterId::new(3), 1);
        assert_eq!(map.to_string(), "1101");
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_word_transaction_rejected() {
        let _ = Transaction::new(SlaveId::new(0), 0, Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_master_rejected() {
        let mut map = RequestMap::new(2);
        map.set_pending(MasterId::new(2), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut map = RequestMap::new(3);
        map.set_pending(MasterId::new(0), 4);
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.pending_words(MasterId::new(0)), 0);
    }
}
