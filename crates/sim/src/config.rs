//! Bus configuration parameters.

use serde::{Deserialize, Serialize};

/// Static parameters of a shared bus, mirroring the knobs of the paper's
/// test-bed (Figure 1: `BURST_SIZE=16, WIDTH=16, FREQ=66MHz, …`).
///
/// ```
/// use socsim::BusConfig;
/// let cfg = BusConfig { max_burst: 8, ..BusConfig::default() };
/// assert_eq!(cfg.max_burst, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Maximum number of words a single grant may transfer before the
    /// master must re-arbitrate. Prevents a master from monopolizing the
    /// bus (§4.1 of the paper).
    pub max_burst: u32,
    /// Extra bus cycles consumed by arbitration before the first word of
    /// each grant. The paper pipelines lottery-manager operation with data
    /// transfer, so the default is zero.
    pub arbitration_overhead: u32,
    /// Wait states inserted by the addressed slave before the first word
    /// of each grant (0 = single-cycle slave).
    pub slave_wait_states: u32,
    /// Bus width in bits. Only used for reporting (throughput in bits);
    /// transfers are counted in words.
    pub width_bits: u32,
    /// Nominal bus clock in MHz. Only used for reporting.
    pub freq_mhz: u32,
}

impl BusConfig {
    /// The configuration used throughout the paper's experiments:
    /// 16-word bursts, pipelined (zero-overhead) arbitration,
    /// single-cycle slaves, 32-bit data path.
    pub fn new() -> Self {
        BusConfig {
            max_burst: 16,
            arbitration_overhead: 0,
            slave_wait_states: 0,
            width_bits: 32,
            freq_mhz: 66,
        }
    }

    /// Stall cycles inserted before the first word of a grant whose
    /// addressed slave uses `wait_states`: arbitration overhead plus the
    /// slave's wait states. This is the per-tenure fixed cost — the bus
    /// step loop, the TLM tenure batch, and the `analytic` predictors
    /// all derive tenure durations from it.
    #[inline]
    pub fn grant_stall(&self, wait_states: u32) -> u32 {
        self.arbitration_overhead + wait_states
    }

    /// [`BusConfig::grant_stall`] for the default (config-level) slave
    /// wait states: the per-grant overhead of a tenure addressed to an
    /// undeclared slave.
    #[inline]
    pub fn per_grant_overhead(&self) -> u32 {
        self.grant_stall(self.slave_wait_states)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: `max_burst` and
    /// `width_bits` must be nonzero.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_burst == 0 {
            return Err("max_burst must be at least 1".into());
        }
        if self.width_bits == 0 {
            return Err("width_bits must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let cfg = BusConfig::default();
        assert_eq!(cfg.max_burst, 16);
        assert_eq!(cfg.arbitration_overhead, 0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_burst_rejected() {
        let cfg = BusConfig { max_burst: 0, ..BusConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_width_rejected() {
        let cfg = BusConfig { width_bits: 0, ..BusConfig::default() };
        assert!(cfg.validate().is_err());
    }
}
