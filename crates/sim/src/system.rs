//! System assembly and the top-level simulation loop.

use crate::arbiter::{Arbiter, IntoArbiter};
use crate::bus::Bus;
use crate::config::BusConfig;
use crate::cycle::Cycle;
use crate::error::BuildSystemError;
use crate::fastforward::Kernel;
use crate::fault::{FaultConfig, FaultEvent, RetryPolicy};
use crate::ids::MasterId;
use crate::master::MasterPort;
use crate::metrics::BusMetrics;
use crate::profile::{PhaseProfiler, SimPhase};
use crate::request::{Transaction, MAX_MASTERS};
use crate::slave::Slave;
use crate::stats::BusStats;
use crate::trace::{BusTrace, TraceSink};

/// A source of communication transactions for one master — the
/// simulator-side stand-in for the component's computation.
///
/// The system polls every source exactly once per cycle, *before*
/// arbitration, so a transaction returned for cycle `c` can be granted in
/// cycle `c`. A source that needs to issue several transactions in the
/// same cycle should keep an internal backlog and emit them on successive
/// polls with the original `issued_at` stamp — latency accounting uses the
/// transaction's own timestamp, not the poll cycle.
pub trait TrafficSource {
    /// Returns the transaction (if any) this component issues at `now`.
    fn poll(&mut self, now: Cycle) -> Option<Transaction>;

    /// Like [`TrafficSource::poll`], but additionally told how many
    /// transactions the component's bus interface still has outstanding.
    /// Sources modelling components that process one request at a time
    /// (e.g. the ATM switch's output ports) override this to hold new
    /// work back; the default ignores the backlog.
    fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
        let _ = backlog;
        self.poll(now)
    }

    /// The fast-forward horizon of this source (see
    /// [`crate::fastforward`]): the earliest cycle `>= now` at which a
    /// poll could return a transaction or mutate internal state, or
    /// [`Cycle::NEVER`] if the source is permanently silent.
    ///
    /// The default returns `now`, which forbids the kernel from ever
    /// skipping past a poll — always correct, never fast. Deterministic
    /// sources whose poll is a pure no-op until a known cycle override
    /// this to unlock fast-forwarding.
    fn next_event(&self, now: Cycle) -> Cycle {
        now
    }

    /// Whether polling this source is a guaranteed no-op while its master
    /// still has work queued.
    ///
    /// Returning `true` is a contract with the batched kernels (the
    /// fleet's tenure batching in [`crate::fleet`]): whenever the port's
    /// backlog is `>= 1`, [`TrafficSource::poll_with_backlog`] returns
    /// `None` **without mutating any internal state**, and
    /// [`TrafficSource::next_event`] returns its argument unchanged (the
    /// conservative every-cycle default). Under that contract a kernel
    /// may elide the per-cycle poll for the whole stretch a backlog is
    /// known to persist — every elided poll is a provable no-op, so
    /// states and statistics stay byte-identical to polling every cycle.
    ///
    /// The default is `false`, which is always correct: the source is
    /// polled every cycle. Only stateless backlog-gated sources (e.g.
    /// `SaturateSource` in the `traffic-gen` crate) should override this.
    fn pure_while_backlogged(&self) -> bool {
        false
    }
}

impl<T: TrafficSource + ?Sized> TrafficSource for Box<T> {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        (**self).poll(now)
    }

    fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
        (**self).poll_with_backlog(now, backlog)
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        (**self).next_event(now)
    }

    fn pure_while_backlogged(&self) -> bool {
        (**self).pure_while_backlogged()
    }
}

/// Conversion into the source slot of a [`SystemBuilder`]; the traffic
/// twin of [`crate::arbiter::IntoArbiter`]. Lets `Box<Concrete>` flow
/// into a builder whose source slot is the default
/// `Box<dyn TrafficSource>` without an unsize coercion the inference
/// engine can miss.
pub trait IntoSource<S> {
    /// Converts `self` into the builder's source type.
    fn into_source(self) -> S;
}

impl<S: TrafficSource> IntoSource<S> for S {
    fn into_source(self) -> S {
        self
    }
}

impl<T: TrafficSource + 'static> IntoSource<Box<dyn TrafficSource>> for Box<T> {
    fn into_source(self) -> Box<dyn TrafficSource> {
        self
    }
}

/// A traffic source that never issues anything (an idle master).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SilentSource;

impl TrafficSource for SilentSource {
    fn poll(&mut self, _now: Cycle) -> Option<Transaction> {
        None
    }

    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

/// Builder for a [`System`].
///
/// The builder (and the [`System`] it produces) is generic over the
/// arbiter type `A` and the traffic-source type `S`, both defaulting to
/// the boxed trait objects every existing call site uses. Passing
/// concrete types — or the dispatch enums `ArbiterKind` /
/// `SourceKind` from the `arbiters` and `traffic-gen` crates — lets the
/// compiler resolve the two hottest per-cycle calls (source poll,
/// arbitration) statically instead of through a vtable.
///
/// ```
/// use socsim::{SystemBuilder, BusConfig};
/// use socsim::arbiter::FixedOrderArbiter;
/// use socsim::system::SilentSource;
///
/// # fn main() -> Result<(), socsim::BuildSystemError> {
/// // Boxed (the default type parameters)…
/// let builder: SystemBuilder = SystemBuilder::new(BusConfig::default());
/// let system = builder
///     .master("cpu", Box::new(SilentSource))
///     .arbiter(Box::new(FixedOrderArbiter::new(1)))
///     .build()?;
/// assert_eq!(system.masters(), 1);
/// // …or fully devirtualized with concrete types.
/// let system = SystemBuilder::new(BusConfig::default())
///     .master("cpu", SilentSource)
///     .arbiter(FixedOrderArbiter::new(1))
///     .build()?;
/// assert_eq!(system.masters(), 1);
/// # Ok(())
/// # }
/// ```
pub struct SystemBuilder<A = Box<dyn Arbiter>, S = Box<dyn TrafficSource>> {
    config: BusConfig,
    names: Vec<String>,
    sources: Vec<S>,
    slaves: Vec<Slave>,
    arbiter: Option<A>,
    trace_capacity: usize,
    trace_sink: Option<Box<dyn TraceSink>>,
    faults: Option<FaultConfig>,
    retry: Option<RetryPolicy>,
    timeout: Option<u64>,
    metrics_window: Option<u64>,
    profiling: bool,
    kernel: Kernel,
}

impl<A: Arbiter, S: TrafficSource> std::fmt::Debug for SystemBuilder<A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("config", &self.config)
            .field("masters", &self.names)
            .field("slaves", &self.slaves)
            .field("has_arbiter", &self.arbiter.is_some())
            .finish()
    }
}

impl<A: Arbiter, S: TrafficSource> SystemBuilder<A, S> {
    /// Starts building a system around a bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        SystemBuilder {
            config,
            names: Vec::new(),
            sources: Vec::new(),
            slaves: Vec::new(),
            arbiter: None,
            trace_capacity: 0,
            trace_sink: None,
            faults: None,
            retry: None,
            timeout: None,
            metrics_window: None,
            profiling: false,
            kernel: Kernel::Cycle,
        }
    }

    /// Adds a master named `name` driven by `source`. Masters receive
    /// dense [`MasterId`]s in the order they are added.
    pub fn master(mut self, name: impl Into<String>, source: impl IntoSource<S>) -> Self {
        self.names.push(name.into());
        self.sources.push(source.into_source());
        self
    }

    /// Registers a slave (only needed for nonzero wait states).
    pub fn slave(mut self, slave: Slave) -> Self {
        self.slaves.push(slave);
        self
    }

    /// Sets the arbitration protocol.
    pub fn arbiter(mut self, arbiter: impl IntoArbiter<A>) -> Self {
        self.arbiter = Some(arbiter.into_arbiter());
        self
    }

    /// Enables bus tracing, buffering at most `capacity` events in
    /// memory. Overflow is counted (see [`BusTrace::is_truncated`])
    /// rather than silently discarded; attach a streaming sink via
    /// [`SystemBuilder::trace_sink`] to capture unbounded runs.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Attaches a streaming trace sink (JSONL writer, ring, VCD bridge —
    /// see [`crate::trace`]) that observes every bus event with no
    /// capacity limit, independently of the in-memory buffer.
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Enables the metrics registry (see [`crate::metrics`]): windowed
    /// counters, gauges and latency histograms sampled every `window`
    /// cycles into a time-series. Off by default; when off the kernel
    /// pays one branch per cycle.
    pub fn metrics_window(mut self, window: u64) -> Self {
        self.metrics_window = Some(window);
        self
    }

    /// Enables wall-clock phase profiling of the cycle kernel (see
    /// [`crate::profile`]). Off by default; profiling never affects
    /// simulated behaviour, only wall-clock reporting.
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Selects the fast-forward kernel for [`System::run`] (see
    /// [`crate::fastforward`]): whenever the bus is idle and every
    /// component's event horizon lies in the future, the run jumps
    /// straight to the horizon and replicates the skipped idle cycles'
    /// accounting arithmetically. Results — statistics, metrics
    /// time-series, traces, fault logs — are cycle-exact against the
    /// default cycle kernel; only wall-clock time changes.
    ///
    /// Shorthand for `kernel(Kernel::Fast)` / `kernel(Kernel::Cycle)`;
    /// kept for the many call sites that predate [`Kernel::Tlm`].
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.kernel = if enabled { Kernel::Fast } else { Kernel::Cycle };
        self
    }

    /// Selects the simulation kernel for [`System::run`] (see
    /// [`Kernel`]): the cycle-accurate reference, the idle-skipping
    /// fast-forward kernel, or the transaction-level kernel that
    /// additionally batches uncontended bus tenures.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Attaches a seeded fault-injection plan (see [`crate::fault`]).
    pub fn faults(mut self, config: FaultConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// Sets the recovery policy applied when an injected slave error
    /// hits a transaction. Without a policy the first error aborts.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Arms the transaction watchdog: a transaction wedged at the head
    /// of a master's queue for `cycles` cycles without progress is
    /// aborted and counted.
    pub fn timeout(mut self, cycles: u64) -> Self {
        self.timeout = Some(cycles);
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns an error if no master was added, too many masters were
    /// added, no arbiter was set, or the bus, fault, retry, timeout or
    /// metrics configuration is invalid.
    pub fn build(self) -> Result<System<A, S>, BuildSystemError> {
        if self.names.is_empty() {
            return Err(BuildSystemError::NoMasters);
        }
        if self.metrics_window == Some(0) {
            return Err(BuildSystemError::InvalidMetricsWindow(0));
        }
        if self.names.len() > MAX_MASTERS {
            return Err(BuildSystemError::TooManyMasters {
                got: self.names.len(),
                max: MAX_MASTERS,
            });
        }
        self.config.validate().map_err(BuildSystemError::InvalidConfig)?;
        let fault_layer = crate::fault::build_fault_layer(self.faults, self.retry, self.timeout)?;
        let arbiter = self.arbiter.ok_or(BuildSystemError::NoArbiter)?;
        let masters: Vec<MasterPort> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| MasterPort::new(MasterId::new(i), name.clone()))
            .collect();
        let n = masters.len();
        let mut trace = if self.trace_capacity > 0 {
            BusTrace::enabled(self.trace_capacity)
        } else {
            BusTrace::disabled()
        };
        if let Some(sink) = self.trace_sink {
            trace = trace.with_sink(sink);
        }
        Ok(System {
            bus: match fault_layer {
                Some(layer) => Bus::with_faults(self.config, layer),
                None => Bus::new(self.config),
            },
            masters,
            sources: self.sources,
            poll_horizon: vec![Cycle::ZERO; n],
            slaves: self.slaves,
            arbiter,
            stats: BusStats::new(n),
            trace,
            metrics: self.metrics_window.map(|w| BusMetrics::new(w, n)),
            profiler: if self.profiling {
                PhaseProfiler::enabled()
            } else {
                PhaseProfiler::disabled()
            },
            now: Cycle::ZERO,
            failover_baseline: 0,
            kernel: self.kernel,
        })
    }
}

/// A complete single-bus system: masters with traffic sources, slaves,
/// an arbiter and the shared bus, plus statistics collection.
///
/// Generic over the arbiter and source types; see [`SystemBuilder`].
pub struct System<A = Box<dyn Arbiter>, S = Box<dyn TrafficSource>> {
    bus: Bus,
    masters: Vec<MasterPort>,
    sources: Vec<S>,
    /// Per-source poll horizon: the earliest cycle at which source `i`
    /// must be polled again ([`TrafficSource::next_event`] computed
    /// after its last actual poll). Busy cycles skip the poll (and its
    /// dispatch) for every source whose horizon is still in the future.
    poll_horizon: Vec<Cycle>,
    slaves: Vec<Slave>,
    arbiter: A,
    stats: BusStats,
    trace: BusTrace,
    metrics: Option<BusMetrics>,
    profiler: PhaseProfiler,
    now: Cycle,
    /// Arbiter failover count at the last statistics reset, so
    /// steady-state windows report only their own failovers.
    failover_baseline: u64,
    /// Which kernel [`System::run`] uses.
    kernel: Kernel,
}

impl<A: Arbiter, S: TrafficSource> std::fmt::Debug for System<A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("masters", &self.masters.len())
            .field("arbiter", &self.arbiter.name())
            .finish()
    }
}

impl<A: Arbiter, S: TrafficSource> System<A, S> {
    /// Number of masters on the bus.
    pub fn masters(&self) -> usize {
        self.masters.len()
    }

    /// The current simulation time (the next cycle to be simulated).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The master port for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn master(&self, id: MasterId) -> &MasterPort {
        &self.masters[id.index()]
    }

    /// The bus (for configuration inspection).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The arbiter, for protocols with runtime knobs (e.g. dynamic
    /// lottery-ticket updates).
    pub fn arbiter_mut(&mut self) -> &mut A {
        &mut self.arbiter
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The recorded bus trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// The recorded fault trace (empty unless fault injection was
    /// configured).
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.bus.fault_events()
    }

    /// The metrics registry's time-series, or `None` when metrics were
    /// not enabled via [`SystemBuilder::metrics_window`]. Call
    /// [`System::flush_metrics`] first if the run length is not a
    /// multiple of the window and the tail matters.
    pub fn metrics(&self) -> Option<&BusMetrics> {
        self.metrics.as_ref()
    }

    /// Closes a partial metrics window at the current cycle, if any
    /// cycles elapsed since the last boundary. No-op without metrics.
    pub fn flush_metrics(&mut self) {
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.flush(self.now, &self.stats, &self.masters);
        }
    }

    /// The wall-clock phase profiler (disabled unless enabled via
    /// [`SystemBuilder::profiling`]).
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// Completes the streaming trace sink, if one is attached: flushes
    /// buffered output (and, for VCD, writes the closing timestamp) and
    /// surfaces any I/O error latched during the run.
    ///
    /// # Errors
    ///
    /// Returns any I/O error the sink latched while recording.
    pub fn finish_trace(&mut self) -> std::io::Result<()> {
        self.trace.finish_sink()
    }

    /// Clears accumulated statistics, e.g. after a warm-up period, so
    /// that subsequent measurements reflect steady state only. The
    /// metrics time-series and profiler are reset along with the
    /// aggregate counters.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::new(self.masters.len());
        self.failover_baseline = self.arbiter.failovers();
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.reset(self.now);
        }
        self.profiler.reset();
    }

    /// Simulates one bus cycle: polls every traffic source, then steps
    /// the bus/arbiter, then updates statistics and (when enabled) the
    /// metrics registry.
    ///
    /// The poll phase is *horizon-aware*: after each actual poll the
    /// source's [`TrafficSource::next_event`] horizon (from the cycle
    /// after the poll) is cached, and while that horizon lies in the
    /// future the poll — a provable no-op by the horizon contract — is
    /// skipped with one integer compare. This applies the fast-forward
    /// kernel's per-source reasoning inside *busy* cycles, where the bus
    /// itself pins simulated time. Sources that keep the conservative
    /// default (`next_event == now`) are polled every cycle, unchanged.
    pub fn step(&mut self) {
        let now = self.now;
        let mut lap = self.profiler.start();
        let polls =
            self.masters.iter_mut().zip(self.sources.iter_mut()).zip(self.poll_horizon.iter_mut());
        for ((port, source), horizon) in polls {
            if *horizon > now {
                continue;
            }
            if let Some(txn) = source.poll_with_backlog(now, port.backlog_transactions()) {
                port.enqueue(txn);
            }
            *horizon = source.next_event(now + 1);
        }
        self.profiler.lap(SimPhase::Poll, &mut lap);
        let completed = self.bus.step(
            &mut self.arbiter,
            &mut self.masters,
            &self.slaves,
            now,
            0,
            &mut self.stats,
            &mut self.trace,
        );
        self.profiler.lap(SimPhase::Bus, &mut lap);
        self.stats.record_cycle();
        self.stats.failovers = self.arbiter.failovers() - self.failover_baseline;
        if let Some(metrics) = self.metrics.as_mut() {
            if let Some((_, done)) = completed {
                metrics.note_completion(done.latency());
            }
            metrics.end_cycle(now, &self.stats, &self.masters);
        }
        self.profiler.lap(SimPhase::Accounting, &mut lap);
        self.now += 1;
    }

    /// Whether [`System::run`] uses an idle-skipping kernel (selected
    /// via [`SystemBuilder::fast_forward`] or [`SystemBuilder::kernel`]).
    pub fn is_fast_forward(&self) -> bool {
        self.kernel.skips_idle()
    }

    /// The kernel [`System::run`] uses.
    pub fn run_kernel(&self) -> Kernel {
        self.kernel
    }

    /// Whether the attached fault plan draws per-cycle master stalls,
    /// which changes which port horizon applies (see
    /// [`MasterPort::next_event_under_stall_faults`]).
    fn stall_faults_active(&self) -> bool {
        self.bus
            .faults
            .as_ref()
            .and_then(|layer| layer.plan.as_ref())
            .is_some_and(|plan| plan.config().master_stall_rate > 0.0)
    }

    /// The event horizon of the whole system at the current cycle: the
    /// earliest cycle `>= now` at which any component does something the
    /// skip path cannot replicate (see [`crate::fastforward`]). Returns
    /// `now` whenever the bus is busy or any request line is live —
    /// i.e. whenever nothing may be skipped — and [`Cycle::NEVER`] when
    /// nothing is scheduled at all.
    pub fn idle_horizon(&self) -> Cycle {
        use crate::fastforward::fold_horizon;
        let now = self.now;
        if self.bus.is_busy() {
            return now;
        }
        let stall_faults = self.stall_faults_active();
        let mut horizon = Cycle::NEVER;
        for port in &self.masters {
            let h = if stall_faults {
                port.next_event_under_stall_faults(now)
            } else {
                port.next_event(now)
            };
            horizon = fold_horizon(horizon, h, now);
            if horizon == now {
                return now;
            }
        }
        for source in &self.sources {
            horizon = fold_horizon(horizon, source.next_event(now), now);
            if horizon == now {
                return now;
            }
        }
        fold_horizon(horizon, self.arbiter.next_event(now), now)
    }

    /// Jumps simulation time from `now` to `target`, replicating the
    /// skipped idle cycles' accounting arithmetically: the cycle
    /// counter, per-cycle idle trace events, the arbiter's empty-map
    /// decision state, metrics window closes/gauge samples, and
    /// profiler laps. Callers must have established (via
    /// [`System::idle_horizon`]) that nothing else happens in
    /// `now..target`.
    fn skip_to(&mut self, target: Cycle) {
        let delta = target - self.now;
        let mut lap = self.profiler.start();
        self.trace.record_idle_span(self.now, delta);
        self.arbiter.skip_idle(delta);
        self.stats.record_cycles(delta);
        self.stats.failovers = self.arbiter.failovers() - self.failover_baseline;
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.skip_cycles(self.now, delta, &self.stats, &self.masters);
        }
        self.profiler.lap_span(SimPhase::Accounting, delta, &mut lap);
        self.now = target;
    }

    /// Whether the TLM kernel may batch tenures on this system. Fault
    /// machinery draws per-cycle state in [`System::step`]'s prepass
    /// (master-stall lotteries, watchdog arming on waiting masters) and
    /// windowed metrics sample gauges at every busy cycle boundary;
    /// neither survives batching, so the TLM kernel degrades to the
    /// (exact) fast kernel when either is active.
    fn tenure_skips_allowed(&self) -> bool {
        self.bus.faults.is_none() && self.metrics.is_none()
    }

    /// Batches the interior of the tenure in flight up to the earliest
    /// *future* poll horizon (and `end`), deferring the polls of
    /// sources pinned at `now` to the next unskipped cycle. Returns
    /// whether any cycles were consumed; `false` means the caller must
    /// fall back to a per-cycle step.
    ///
    /// Deferred polls are the TLM approximation: sources announcing
    /// true future horizons (periodic, on–off, replay, silent) lose
    /// nothing — their generators back-fill skipped cycles at the next
    /// poll with exact `issued_at` stamps, so every arbitration cycle
    /// still sees identical request lines and queue heads, and results
    /// stay byte-identical. Sources that must be polled every cycle
    /// (Bernoulli/Poisson draws, saturate probes) have those polls
    /// elided, thinning their arrival process — a measured, bounded
    /// error reported by the TLM harness, never silently absorbed.
    fn skip_tenure(&mut self, end: Cycle) -> bool {
        let now = self.now;
        let mut limit = end;
        for (source, &cached) in self.sources.iter().zip(&self.poll_horizon) {
            if cached > now {
                // A true future horizon: nothing to poll before it, so
                // it bounds the batch and the source stays exact.
                limit = limit.min(cached);
                continue;
            }
            // A poll is due. A source that pins its horizon at every
            // cycle (Bernoulli draws, saturate probes, the conservative
            // default) is deferred; one whose next event lies beyond
            // `now + 1` announced a real event *at* `now`, which a batch
            // would lose — step instead so the poll happens.
            if source.next_event(now + 1) > now + 1 {
                return false;
            }
        }
        if limit <= now {
            return false;
        }
        let mut lap = self.profiler.start();
        let consumed = self.bus.skip_tenure(
            &mut self.masters,
            now,
            limit - now,
            &mut self.stats,
            &mut self.trace,
        );
        if consumed == 0 {
            return false;
        }
        self.profiler.lap_span(SimPhase::Bus, consumed, &mut lap);
        self.stats.record_cycles(consumed);
        self.stats.failovers = self.arbiter.failovers() - self.failover_baseline;
        self.now = now + consumed;
        true
    }

    /// Simulates `cycles` bus cycles and returns the statistics so far.
    ///
    /// Under the default cycle kernel this is `cycles` calls to
    /// [`System::step`]. Under the fast-forward kernel (see
    /// [`SystemBuilder::fast_forward`]) idle spans are jumped in one
    /// step each, with cycle-exact results. The TLM kernel (see
    /// [`Kernel::Tlm`]) additionally batches the interior of each bus
    /// tenure; see [`crate::fastforward`] for its exactness contract.
    pub fn run(&mut self, cycles: u64) -> &BusStats {
        if self.kernel.skips_idle() {
            let tenures = self.kernel.skips_tenures() && self.tenure_skips_allowed();
            let end = self.now + cycles;
            while self.now < end {
                let target = self.idle_horizon().min(end);
                if target > self.now {
                    self.skip_to(target);
                } else if !(tenures && self.bus.is_busy() && self.skip_tenure(end)) {
                    self.step();
                }
            }
        } else {
            for _ in 0..cycles {
                self.step();
            }
        }
        &self.stats
    }

    /// Runs `cycles` warm-up cycles and then discards the statistics, so
    /// a following [`System::run`] measures steady-state behaviour.
    pub fn warm_up(&mut self, cycles: u64) {
        self.run(cycles);
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FixedOrderArbiter;
    use crate::ids::SlaveId;

    struct OneShot(Option<Transaction>);
    impl TrafficSource for OneShot {
        fn poll(&mut self, _now: Cycle) -> Option<Transaction> {
            self.0.take()
        }
    }

    fn one_shot(words: u32) -> Box<dyn TrafficSource> {
        Box::new(OneShot(Some(Transaction::new(SlaveId::new(0), words, Cycle::ZERO))))
    }

    #[test]
    fn build_validates_inputs() {
        let builder: SystemBuilder = SystemBuilder::new(BusConfig::default());
        let err = builder.build().unwrap_err();
        assert_eq!(err, BuildSystemError::NoMasters);

        let builder: SystemBuilder = SystemBuilder::new(BusConfig::default());
        let err = builder.master("m", Box::new(SilentSource)).build().unwrap_err();
        assert_eq!(err, BuildSystemError::NoArbiter);

        let bad = BusConfig { max_burst: 0, ..BusConfig::default() };
        let err = SystemBuilder::new(bad)
            .master("m", SilentSource)
            .arbiter(FixedOrderArbiter::new(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildSystemError::InvalidConfig(_)));
    }

    #[test]
    fn end_to_end_single_master() {
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("m0", one_shot(5))
            .arbiter(FixedOrderArbiter::new(1))
            .trace_capacity(64)
            .build()
            .expect("valid system");
        let stats = system.run(10);
        assert_eq!(stats.master(MasterId::new(0)).words, 5);
        assert_eq!(stats.master(MasterId::new(0)).transactions, 1);
        assert_eq!(stats.cycles, 10);
        assert_eq!(system.trace().render_owners(0..6), "00000.");
    }

    #[test]
    fn warm_up_discards_statistics() {
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("m0", one_shot(5))
            .arbiter(FixedOrderArbiter::new(1))
            .build()
            .expect("valid system");
        system.warm_up(10);
        assert_eq!(system.stats().cycles, 0);
        let stats = system.run(5);
        assert_eq!(stats.cycles, 5);
        assert_eq!(stats.master(MasterId::new(0)).words, 0); // already done
    }

    #[test]
    fn exactly_max_masters_is_accepted_and_one_more_rejected() {
        let build = |n: usize| {
            let mut builder = SystemBuilder::new(BusConfig::default());
            for i in 0..n {
                builder = builder.master(format!("m{i}"), SilentSource);
            }
            builder.arbiter(FixedOrderArbiter::new(n)).build()
        };
        assert!(build(MAX_MASTERS).is_ok());
        assert!(matches!(
            build(MAX_MASTERS + 1).unwrap_err(),
            BuildSystemError::TooManyMasters { got, max }
                if got == MAX_MASTERS + 1 && max == MAX_MASTERS
        ));
    }

    #[test]
    fn full_width_system_serves_every_master() {
        let mut builder = SystemBuilder::new(BusConfig::default());
        for i in 0..MAX_MASTERS {
            builder = builder.master(format!("m{i}"), one_shot(2));
        }
        let mut system =
            builder.arbiter(FixedOrderArbiter::new(MAX_MASTERS)).build().expect("valid system");
        system.run(2 * MAX_MASTERS as u64 + 4);
        for i in 0..MAX_MASTERS {
            assert_eq!(system.stats().master(MasterId::new(i)).transactions, 1, "master {i}");
        }
    }

    /// A deterministic source issuing `words` every `period` cycles,
    /// with an exact fast-forward horizon.
    struct EveryN {
        period: u64,
        words: u32,
    }

    impl TrafficSource for EveryN {
        fn poll(&mut self, now: Cycle) -> Option<Transaction> {
            now.index()
                .is_multiple_of(self.period)
                .then(|| Transaction::new(SlaveId::new(0), self.words, now))
        }

        fn next_event(&self, now: Cycle) -> Cycle {
            let rem = now.index() % self.period;
            if rem == 0 {
                now
            } else {
                Cycle::new(now.index() + self.period - rem)
            }
        }
    }

    /// Forwards to a fixed-order arbiter while counting skipped idle
    /// cycles through a shared handle, so tests can prove the fast
    /// kernel actually jumped.
    struct SpyArbiter {
        inner: FixedOrderArbiter,
        skipped: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl Arbiter for SpyArbiter {
        fn arbitrate(
            &mut self,
            map: &crate::request::RequestMap,
            now: Cycle,
        ) -> Option<crate::arbiter::Grant> {
            self.inner.arbitrate(map, now)
        }

        fn name(&self) -> &str {
            "spy"
        }

        fn next_event(&self, now: Cycle) -> Cycle {
            self.inner.next_event(now)
        }

        fn skip_idle(&mut self, delta: u64) {
            self.skipped.fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
            self.inner.skip_idle(delta);
        }
    }

    #[test]
    fn fast_forward_is_cycle_exact_and_actually_skips() {
        let run = |fast: bool| {
            let skipped = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let spy = SpyArbiter {
                inner: FixedOrderArbiter::new(2),
                skipped: std::sync::Arc::clone(&skipped),
            };
            let mut system = SystemBuilder::new(BusConfig::default())
                .master("a", EveryN { period: 50, words: 4 })
                .master("b", EveryN { period: 70, words: 2 })
                .arbiter(spy)
                .trace_capacity(4096)
                .metrics_window(32)
                .fast_forward(fast)
                .build()
                .expect("valid system");
            system.run(1_000);
            system.flush_metrics();
            (
                system.stats().clone(),
                system.trace().clone(),
                system.metrics().expect("metrics on").samples().to_vec(),
                system.now(),
                skipped.load(std::sync::atomic::Ordering::Relaxed),
            )
        };
        let (slow_stats, slow_trace, slow_metrics, slow_now, slow_skipped) = run(false);
        let (fast_stats, fast_trace, fast_metrics, fast_now, fast_skipped) = run(true);
        assert_eq!(slow_stats, fast_stats);
        assert_eq!(slow_trace, fast_trace);
        assert_eq!(slow_metrics, fast_metrics);
        assert_eq!(slow_now, fast_now);
        assert_eq!(slow_skipped, 0, "cycle kernel never skips");
        assert!(fast_skipped > 500, "fast kernel jumped the idle gaps, got {fast_skipped}");
    }

    #[test]
    fn fast_forward_never_jumps_past_the_run_end() {
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("quiet", SilentSource)
            .arbiter(FixedOrderArbiter::new(1))
            .fast_forward(true)
            .build()
            .expect("valid system");
        assert!(system.is_fast_forward());
        assert_eq!(system.idle_horizon(), Cycle::NEVER, "nothing scheduled");
        system.run(10_000);
        assert_eq!(system.now(), Cycle::new(10_000), "end clamps the jump");
        assert_eq!(system.stats().cycles, 10_000);
        assert_eq!(system.stats().bus_utilization(), 0.0);
    }

    /// Counts how many times [`System::step`] reaches the bus by spying
    /// on arbitrations: the TLM kernel must arbitrate exactly as often
    /// as the cycle kernel (once per tenure + once per unskipped idle
    /// cycle) while *stepping* far fewer cycles.
    fn run_kernel_matrix(kernel: Kernel) -> (BusStats, BusTrace, Cycle, u64) {
        let skipped = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let spy = SpyArbiter {
            inner: FixedOrderArbiter::new(2),
            skipped: std::sync::Arc::clone(&skipped),
        };
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("a", EveryN { period: 50, words: 4 })
            .master("b", EveryN { period: 70, words: 2 })
            .arbiter(spy)
            .trace_capacity(4096)
            .kernel(kernel)
            .build()
            .expect("valid system");
        system.run(1_000);
        (
            system.stats().clone(),
            system.trace().clone(),
            system.now(),
            skipped.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    #[test]
    fn tlm_kernel_is_byte_exact_for_horizon_announcing_sources() {
        let (cycle_stats, cycle_trace, cycle_now, _) = run_kernel_matrix(Kernel::Cycle);
        let (tlm_stats, tlm_trace, tlm_now, tlm_skipped) = run_kernel_matrix(Kernel::Tlm);
        assert_eq!(cycle_stats, tlm_stats);
        assert_eq!(cycle_trace, tlm_trace);
        assert_eq!(cycle_now, tlm_now);
        assert!(tlm_skipped > 500, "tlm still skips idle gaps, got {tlm_skipped}");
    }

    #[test]
    fn tlm_kernel_batches_tenures_with_overhead() {
        // With arbitration overhead the tenure interior is long enough
        // that batching is observable: the run must finish with the same
        // results as the cycle kernel while the profiler (disabled) and
        // stats stay identical.
        let run = |kernel: Kernel| {
            let cfg = BusConfig { arbitration_overhead: 4, ..BusConfig::default() };
            let mut system = SystemBuilder::new(cfg)
                .master("a", EveryN { period: 40, words: 8 })
                .master("b", EveryN { period: 90, words: 8 })
                .arbiter(FixedOrderArbiter::new(2))
                .trace_capacity(8192)
                .kernel(kernel)
                .build()
                .expect("valid system");
            system.run(2_000);
            (system.stats().clone(), system.trace().clone())
        };
        assert_eq!(run(Kernel::Cycle), run(Kernel::Tlm));
    }

    #[test]
    fn tlm_degrades_to_fast_under_faults_and_metrics() {
        // Fault injection and windowed metrics disable tenure batching;
        // the run must remain byte-exact against the cycle kernel (the
        // fast kernel's guarantee) rather than approximate.
        let run = |kernel: Kernel| {
            let mut system = SystemBuilder::new(BusConfig::default())
                .master("a", EveryN { period: 30, words: 6 })
                .arbiter(FixedOrderArbiter::new(1))
                .trace_capacity(4096)
                .metrics_window(64)
                .faults(FaultConfig { seed: 9, slave_error_rate: 0.05, ..FaultConfig::default() })
                .retry_policy(RetryPolicy::exponential(2, 4))
                .timeout(200)
                .kernel(kernel)
                .build()
                .expect("valid system");
            system.run(3_000);
            system.flush_metrics();
            (
                system.stats().clone(),
                system.trace().clone(),
                system.fault_events().to_vec(),
                system.metrics().expect("metrics on").samples().to_vec(),
            )
        };
        assert_eq!(run(Kernel::Cycle), run(Kernel::Tlm));
    }

    #[test]
    fn two_masters_share_in_fixed_order() {
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("a", one_shot(3))
            .master("b", one_shot(3))
            .arbiter(FixedOrderArbiter::new(2))
            .trace_capacity(64)
            .build()
            .expect("valid system");
        system.run(8);
        assert_eq!(system.trace().render_owners(0..7), "000111.");
        let b = system.stats().master(MasterId::new(1));
        // b issued at 0, finished after cycle 5 => latency 6 over 3 words.
        assert_eq!(b.cycles_per_word(), Some(2.0));
    }
}
