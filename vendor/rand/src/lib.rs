//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of the `rand` API it actually
//! uses: [`RngCore`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait with `gen_range` / `gen_bool`, and
//! [`rngs::StdRng`]. The generator is a splitmix64 core — not the
//! upstream ChaCha-based `StdRng`, so draw sequences differ from real
//! `rand`, but it is deterministic per seed and statistically sound
//! for the simulator's purposes (all repo tests assert tolerances,
//! not exact upstream sequences).

use std::ops::{Range, RangeInclusive};

/// Core trait producing raw random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension methods, blanket-implemented for all cores.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
