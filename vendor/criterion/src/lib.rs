//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach a crates.io mirror, so this
//! vendored crate keeps the repo's `[[bench]]` targets compiling and
//! runnable. Instead of statistical sampling, each benchmark body is
//! executed once and its wall-clock time printed — enough to smoke-
//! test the bench targets and eyeball relative cost, not a substitute
//! for real criterion runs.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    #[must_use]
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Id carrying only a parameter value.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Throughput annotation attached to a group (recorded, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to each benchmark body.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` and records its per-call duration. The batch
    /// size grows until one batch runs long enough for the monotonic
    /// clock to resolve it well above its own overhead, then the best
    /// of three batches is reported — a single raw invocation would
    /// measure mostly timer resolution and scheduler noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let floor = std::time::Duration::from_millis(10);
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= floor || batch >= (1 << 30) {
                let mut best = elapsed.as_nanos();
                for _ in 0..2 {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    best = best.min(start.elapsed().as_nanos());
                }
                self.elapsed_ns = best / u128::from(batch);
                return;
            }
            batch = batch.saturating_mul(8);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the target sample count (ignored).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Records the group's throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        println!("bench {}/{}: {} ns/iter", self.name, id, b.elapsed_ns);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b, input);
        println!("bench {}/{}: {} ns/iter", self.name, id.label, b.elapsed_ns);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        println!("bench {}: {} ns/iter", id, b.elapsed_ns);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
