//! Offline no-op stand-in for `serde_derive`.
//!
//! The repo uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker (no serialization is ever performed), and the build
//! environment cannot reach a crates.io mirror. The vendored `serde`
//! crate blanket-implements its marker traits, so these derives can
//! expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
