//! Offline stand-in for `serde`.
//!
//! The repo derives `Serialize`/`Deserialize` on its data types but
//! never actually serializes anything, and the build environment has
//! no crates.io access. This vendored crate keeps the derive
//! annotations compiling: the traits are markers with blanket
//! implementations, and the re-exported derive macros expand to
//! nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
