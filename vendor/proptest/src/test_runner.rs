//! Test-runner support types: configuration, case outcomes, and the
//! deterministic RNG behind value generation.

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is retried without counting.
    Reject(&'static str),
    /// `prop_assert*!` failed; the test fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Deterministic generator used for value generation (splitmix64
/// core seeded from a hash of the test's full name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name, so every `cargo
    /// test` run draws the same value sequence for a given test.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is empty");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("mod::test");
        let mut b = TestRng::from_name("mod::test");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("mod::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
