//! The [`Strategy`] trait and the built-in strategies: integer/float
//! ranges, tuples, `Just`, map/filter combinators, and `Union`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking:
/// `new_value` draws one value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values for which `accept` returns `true`,
    /// redrawing otherwise.
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        accept: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, reason: reason.into(), accept }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: String,
    accept: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.new_value(rng);
            if (self.accept)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive draws: {}", self.reason);
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32 as u32, i64 as u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::from_name("strategy::bounds");
        for _ in 0..1000 {
            let (a, b, f) = (1u32..5, 10u64..=12, 0.0f64..1.0).new_value(&mut rng);
            assert!((1..5).contains(&a));
            assert!((10..=12).contains(&b));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_union_compose() {
        let mut rng = TestRng::from_name("strategy::compose");
        let even = (0u32..100).prop_map(|x| x * 2);
        let small = (0u32..100).prop_filter("must be small", |&x| x < 10);
        let either = Union::new(vec![even.boxed(), small.boxed()]);
        for _ in 0..1000 {
            let v = either.new_value(&mut rng);
            assert!(v % 2 == 0 || v < 10);
        }
    }

    #[test]
    fn just_repeats_its_value() {
        let mut rng = TestRng::from_name("strategy::just");
        assert_eq!(Just(7u8).new_value(&mut rng), 7);
    }
}
