//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of the proptest API its test suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `boxed`, range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: values are
//! drawn purely at random (no size-driven growth) and failures are
//! reported without shrinking. Each generated test function is
//! deterministically seeded from its module path and name, so runs
//! are reproducible.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    //! Strategies sampling from explicit option sets (`select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// `prop::sample::select(options)`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` path exposed by the upstream prelude.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each function body runs `config.cases`
/// times with fresh values drawn from the listed strategies.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let outcome = {
                        $(let $p = $crate::strategy::Strategy::new_value(&($s), &mut rng);)+
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            assert!(
                                rejected < 10_000,
                                "proptest {}: too many prop_assume rejections ({})",
                                stringify!($name),
                                why
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (retried without counting) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
