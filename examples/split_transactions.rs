//! Split (multithreaded) transactions — the paper's §2.3 optional
//! feature — combined with lottery arbitration.
//!
//! Two masters read from a slow memory (12-cycle access). On a blocking
//! bus the slave's wait states idle the bus; with split transactions
//! the bus is released during the access and the other master's traffic
//! fills the gap. The lottery manager arbitrates among the masters *and*
//! the memory's responder port, so response traffic gets its own ticket
//! allocation.
//!
//! Run with: `cargo run --release --example split_transactions`

use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::split::SplitSystemBuilder;
use lotterybus_repro::socsim::{BusConfig, MasterId, Slave, SlaveId, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};

const ACCESS_LATENCY: u32 = 12;
const WINDOW: u64 = 200_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reader = GeneratorSpec::poisson(0.02, SizeDist::fixed(8));
    let streamer = GeneratorSpec::poisson(0.03, SizeDist::fixed(16));

    // Blocking bus: the slave stalls the bus for its access time.
    let mut blocking = SystemBuilder::new(BusConfig::default())
        .master("reader", reader.build_source(1))
        .master("streamer", streamer.build_source(2))
        .slave(Slave::with_wait_states(SlaveId::new(0), "mem", ACCESS_LATENCY))
        .arbiter(StaticLotteryArbiter::with_seed(TicketAssignment::new(vec![1, 1])?, 5)?)
        .build()?;
    blocking.run(WINDOW);
    let blocking_words: u64 = (0..2).map(|i| blocking.stats().master(MasterId::new(i)).words).sum();

    // Split bus: requests and responses are separate tenures; the
    // responder port holds 2 tickets so responses flow promptly.
    let mut split = SplitSystemBuilder::new(BusConfig::default())
        .master("reader", reader.build_source(1))
        .master("streamer", streamer.build_source(2))
        .split_slave("mem", ACCESS_LATENCY, 8)
        .arbiter(Box::new(StaticLotteryArbiter::with_seed(
            TicketAssignment::new(vec![1, 1, 2])?,
            5,
        )?))
        .build()?;
    split.run(WINDOW);
    let split_words: u64 = (0..2).map(|i| split.master_stats(i).completed_words).sum();

    println!("slow memory, {ACCESS_LATENCY}-cycle access, {WINDOW} cycles:\n");
    println!("  blocking bus (wait states): {blocking_words:>8} words delivered");
    println!("  split transactions:         {split_words:>8} words delivered");
    println!(
        "  improvement:                {:>7.1}%",
        (split_words as f64 / blocking_words as f64 - 1.0) * 100.0
    );
    for m in 0..2 {
        let stats = split.master_stats(m);
        println!(
            "  split latency, master {m}: {:.2} cycles/word over {} transactions",
            stats.cycles_per_word().unwrap_or(f64::NAN),
            stats.transactions,
        );
    }
    println!();
    println!("the split bus keeps transferring while the memory looks up the");
    println!("previous request; the blocking bus burns those cycles as stalls.");
    Ok(())
}
