//! The dynamic lottery manager (paper §4.4): ticket holdings that change
//! at run time.
//!
//! In the dynamic architecture the number of tickets a component holds
//! "is periodically communicated by the component to the lottery
//! manager". This example reconfigures the QoS split mid-run — from
//! 1:3 in favour of the DSP to 3:1 in favour of the CPU — without
//! touching the hardware, something the static manager's precomputed
//! look-up table cannot do.
//!
//! Run with: `cargo run --release --example dynamic_tickets`

use lotterybus_repro::lottery::{DynamicLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{
    Arbiter, BusConfig, Cycle, Grant, MasterId, RequestMap, SystemBuilder,
};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};
use std::cell::RefCell;
use std::rc::Rc;

/// Shares one dynamic lottery manager between the running system and
/// the reconfiguration logic outside it.
#[derive(Clone)]
struct SharedManager(Rc<RefCell<DynamicLotteryArbiter>>);

impl Arbiter for SharedManager {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        self.0.borrow_mut().arbitrate(requests, now)
    }

    fn name(&self) -> &str {
        "lottery-dynamic (shared)"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let manager = SharedManager(Rc::new(RefCell::new(DynamicLotteryArbiter::with_seed(
        TicketAssignment::new(vec![1, 3])?,
        9,
    )?)));

    // Both components keep the bus saturated throughout.
    let heavy = GeneratorSpec::poisson(0.05, SizeDist::fixed(16));
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("cpu", heavy.build_source(1))
        .master("dsp", heavy.build_source(2))
        .arbiter(manager.clone())
        .build()?;

    println!("phase 1: tickets cpu:dsp = 1:3");
    system.warm_up(10_000);
    system.run(200_000);
    let stats = system.stats();
    println!(
        "  cpu {:>5.1}%   dsp {:>5.1}%",
        stats.bandwidth_fraction(MasterId::new(0)) * 100.0,
        stats.bandwidth_fraction(MasterId::new(1)) * 100.0,
    );

    // A workload shift makes the CPU's traffic the important one: the
    // components communicate new holdings to the manager.
    manager.0.borrow_mut().set_tickets(vec![3, 1])?;
    system.reset_stats();

    println!("phase 2: tickets reconfigured to cpu:dsp = 3:1");
    system.run(200_000);
    let stats = system.stats();
    println!(
        "  cpu {:>5.1}%   dsp {:>5.1}%",
        stats.bandwidth_fraction(MasterId::new(0)) * 100.0,
        stats.bandwidth_fraction(MasterId::new(1)) * 100.0,
    );

    println!();
    println!("the allocation flips with the ticket update — no rebuild of the");
    println!("arbiter (the static manager would need its range LUT regenerated).");
    Ok(())
}
