//! Hierarchical (multi-channel) communication architecture: two buses
//! connected by bridges, each with its own lottery manager — the
//! paper's §4.1 "arbitrary network of shared channels... a centralized
//! lottery manager for each shared channel".
//!
//! A CPU cluster lives on channel 0 with its local memory; a DSP
//! cluster lives on channel 1 with its own. Most traffic stays local,
//! but each cluster also reads from the other side through a pair of
//! directed bridges. Per-channel lottery tickets keep local bandwidth
//! shares under control while cross-channel transactions pay the extra
//! hop latency.
//!
//! Run with: `cargo run --release --example hierarchical_bus`

use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::multichannel::{ChannelId, MultiChannelBuilder};
use lotterybus_repro::socsim::{BusConfig, Slave, SlaveId};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each channel arbitrates among three actors: its two local masters
    // plus the ingress bridge port, which gets a generous ticket share
    // so cross traffic is not starved.
    let channel_arbiter = |seed: u32| -> Result<_, Box<dyn std::error::Error>> {
        Ok(Box::new(StaticLotteryArbiter::with_seed(TicketAssignment::new(vec![1, 2, 3])?, seed)?))
    };

    // Mostly-local traffic plus a slower cross-channel stream.
    let local = GeneratorSpec::poisson(0.02, SizeDist::fixed(16));
    let cross = GeneratorSpec::poisson(0.004, SizeDist::fixed(16));

    let mut system = MultiChannelBuilder::new()
        .channel(BusConfig::default(), channel_arbiter(11)?)
        .channel(BusConfig::default(), channel_arbiter(22)?)
        // Channel 0: CPU cluster. Master 0 local, master 1 reads remote.
        .master("cpu0", ChannelId::new(0), local.to_slave(0).build_source(1))
        .master("cpu1", ChannelId::new(0), cross.to_slave(1).build_source(2))
        // Channel 1: DSP cluster. Master 2 local, master 3 reads remote.
        .master("dsp0", ChannelId::new(1), local.to_slave(1).build_source(3))
        .master("dsp1", ChannelId::new(1), cross.to_slave(0).build_source(4))
        .slave(Slave::new(SlaveId::new(0), "cpu-mem"), ChannelId::new(0))
        .slave(Slave::new(SlaveId::new(1), "dsp-mem"), ChannelId::new(1))
        .bridge(ChannelId::new(0), ChannelId::new(1), 4)
        .bridge(ChannelId::new(1), ChannelId::new(0), 4)
        .build()?;

    system.run(400_000);

    println!("{:<8} {:>8} {:>14} {:>18}", "master", "txns", "words", "latency (cyc/word)");
    for (m, name) in ["cpu0", "cpu1", "dsp0", "dsp1"].iter().enumerate() {
        let stats = system.master_stats(m);
        println!(
            "{:<8} {:>8} {:>14} {:>18}",
            name,
            stats.transactions,
            stats.completed_words,
            stats.cycles_per_word().map_or("-".into(), |l| format!("{l:.2}")),
        );
    }
    for c in 0..2 {
        let stats = system.channel_stats(ChannelId::new(c));
        println!("channel {c}: utilization {:.1}%", stats.bus_utilization() * 100.0);
    }
    println!();
    println!("local transactions finish in ~1 cycle/word; cross-channel ones pay");
    println!("the second arbitration and transfer leg through the bridge.");
    Ok(())
}
