//! The ATM-switch case study (paper §5.3): forward cells through a
//! 4-port output-queued switch under all three communication
//! architectures and compare the quality-of-service outcomes.
//!
//! Run with: `cargo run --release --example atm_switch`

use lotterybus_repro::atm::{SwitchArbiter, SwitchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SwitchConfig::paper_setup();
    println!("4-port output-queued ATM switch, weights 1:2:4:6 (ports 1..4)");
    println!("QoS goals: port 4 minimum latency; ports 1-3 bandwidth 1:2:4\n");
    for arch in [SwitchArbiter::StaticPriority, SwitchArbiter::Tdma, SwitchArbiter::Lottery] {
        let report = cfg.run(arch, 300_000, 17)?;
        println!("{report}\n");
    }
    println!("(ports 1-3 oversubscribe the bus, so their latencies are unbounded");
    println!(" queueing backlogs — the QoS metric for them is bandwidth share.)");
    println!();
    println!("only LOTTERYBUS meets both goals: low port-4 latency *and*");
    println!("bandwidth shares that respect the 1:2:4 reservation.");
    Ok(())
}
