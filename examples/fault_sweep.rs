//! Fault sweep: how each arbitration protocol degrades as the bus gets
//! less reliable.
//!
//! Sweeps the slave-error rate upward with a fixed retry policy and
//! watchdog, and prints the latency (cycles/word) and loss curve for
//! lottery, static-priority and round-robin arbitration over the same
//! four-master workload. Run with:
//!
//! ```console
//! cargo run --release --example fault_sweep
//! ```

use lotterybus_repro::arbiters::{RoundRobinArbiter, StaticPriorityArbiter};
use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{
    Arbiter, BusConfig, BusStats, FaultConfig, MasterId, RetryPolicy, SystemBuilder,
};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};

const WEIGHTS: [u32; 4] = [1, 2, 3, 4];
const ERROR_RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];
const CYCLES: u64 = 100_000;
const SEED: u64 = 17;

fn build_arbiter(name: &str) -> Result<Box<dyn Arbiter>, Box<dyn std::error::Error>> {
    Ok(match name {
        "lottery" => {
            let tickets = TicketAssignment::new(WEIGHTS.to_vec())?;
            Box::new(StaticLotteryArbiter::with_seed(tickets, SEED as u32 | 1)?)
        }
        "priority" => Box::new(StaticPriorityArbiter::new(WEIGHTS.to_vec())?),
        _ => Box::new(RoundRobinArbiter::new(WEIGHTS.len())?),
    })
}

fn run(name: &str, error_rate: f64) -> Result<BusStats, Box<dyn std::error::Error>> {
    let spec = GeneratorSpec::poisson(0.012, SizeDist::fixed(16));
    let mut builder = SystemBuilder::new(BusConfig::default());
    for i in 0..WEIGHTS.len() {
        builder = builder.master(format!("m{i}"), spec.build_source(SEED + i as u64));
    }
    if error_rate > 0.0 {
        builder = builder
            .faults(FaultConfig { slave_error_rate: error_rate, ..FaultConfig::with_seed(SEED) })
            .retry_policy(RetryPolicy::exponential(4, 2))
            .timeout(4_096);
    }
    let mut system = builder.arbiter(build_arbiter(name)?).build()?;
    system.warm_up(10_000);
    system.run(CYCLES);
    Ok(system.stats().clone())
}

/// Words-weighted mean latency in cycles per word across all masters.
fn mean_latency(stats: &BusStats) -> f64 {
    let (mut cycles, mut words) = (0.0, 0.0);
    for i in 0..WEIGHTS.len() {
        let m = stats.master(MasterId::new(i));
        if let Some(cpw) = m.cycles_per_word() {
            cycles += cpw * m.completed_words as f64;
            words += m.completed_words as f64;
        }
    }
    if words == 0.0 {
        f64::NAN
    } else {
        cycles / words
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("latency degradation under rising slave-error rates");
    println!("(retry max=4 backoff=2x, watchdog 4096 cycles, {CYCLES} measured cycles)\n");
    println!(
        "{:<10} {:>8} {:>12} {:>9} {:>9} {:>9}",
        "arbiter", "err rate", "cyc/word", "retries", "aborted", "util%"
    );
    for name in ["lottery", "priority", "rr"] {
        let mut baseline = None;
        for rate in ERROR_RATES {
            let stats = run(name, rate)?;
            let latency = mean_latency(&stats);
            let baseline = *baseline.get_or_insert(latency);
            println!(
                "{:<10} {:>8.2} {:>9.2} {:>+2.0}% {:>9} {:>9} {:>9.1}",
                name,
                rate,
                latency,
                (latency / baseline - 1.0) * 100.0,
                stats.retries,
                stats.aborted_transactions,
                stats.bus_utilization() * 100.0,
            );
        }
        println!();
    }
    Ok(())
}
