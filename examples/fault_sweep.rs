//! Fault sweep: how each arbitration protocol degrades as the bus gets
//! less reliable.
//!
//! Sweeps the slave-error rate upward with a fixed retry policy and
//! watchdog, and prints the latency (cycles/word) and loss curve for
//! lottery, static-priority and round-robin arbitration over the same
//! four-master workload. The (arbiter, error-rate) grid fans out over
//! worker threads; results are collected in grid order, so the printed
//! table is identical no matter the worker count. Run with:
//!
//! ```console
//! cargo run --release --example fault_sweep            # all cores
//! cargo run --release --example fault_sweep -- --jobs 1
//! ```

use lotterybus_repro::arbiters::{RoundRobinArbiter, StaticPriorityArbiter};
use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{
    pool, Arbiter, BusConfig, BusStats, FaultConfig, MasterId, RetryPolicy, SystemBuilder,
};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};
use std::time::Instant;

const WEIGHTS: [u32; 4] = [1, 2, 3, 4];
const ERROR_RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];
const ARBITERS: [&str; 3] = ["lottery", "priority", "rr"];
const CYCLES: u64 = 100_000;
const SEED: u64 = 17;

fn build_arbiter(name: &str) -> Result<Box<dyn Arbiter>, Box<dyn std::error::Error>> {
    Ok(match name {
        "lottery" => {
            let tickets = TicketAssignment::new(WEIGHTS.to_vec())?;
            Box::new(StaticLotteryArbiter::with_seed(tickets, SEED as u32 | 1)?)
        }
        "priority" => Box::new(StaticPriorityArbiter::new(WEIGHTS.to_vec())?),
        _ => Box::new(RoundRobinArbiter::new(WEIGHTS.len())?),
    })
}

// Errors come back as `String` (not `Box<dyn Error>`) so results can
// cross thread boundaries in the parallel fan-out.
fn run(name: &str, error_rate: f64) -> Result<BusStats, String> {
    let spec = GeneratorSpec::poisson(0.012, SizeDist::fixed(16));
    let mut builder = SystemBuilder::new(BusConfig::default());
    for i in 0..WEIGHTS.len() {
        builder = builder.master(format!("m{i}"), spec.build_source(SEED + i as u64));
    }
    if error_rate > 0.0 {
        builder = builder
            .faults(FaultConfig { slave_error_rate: error_rate, ..FaultConfig::with_seed(SEED) })
            .retry_policy(RetryPolicy::exponential(4, 2))
            .timeout(4_096);
    }
    let mut system = builder
        .arbiter(build_arbiter(name).map_err(|e| e.to_string())?)
        .build()
        .map_err(|e| e.to_string())?;
    system.warm_up(10_000);
    system.run(CYCLES);
    Ok(system.stats().clone())
}

/// Words-weighted mean latency in cycles per word across all masters.
fn mean_latency(stats: &BusStats) -> f64 {
    let (mut cycles, mut words) = (0.0, 0.0);
    for i in 0..WEIGHTS.len() {
        let m = stats.master(MasterId::new(i));
        if let Some(cpw) = m.cycles_per_word() {
            cycles += cpw * m.completed_words as f64;
            words += m.completed_words as f64;
        }
    }
    if words == 0.0 {
        f64::NAN
    } else {
        cycles / words
    }
}

fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("usage: fault_sweep [--jobs N]");
            std::process::exit(2);
        }),
        None => 0, // all available cores
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_arg();
    println!("latency degradation under rising slave-error rates");
    println!("(retry max=4 backoff=2x, watchdog 4096 cycles, {CYCLES} measured cycles)\n");
    println!(
        "{:<10} {:>8} {:>12} {:>9} {:>9} {:>9}",
        "arbiter", "err rate", "cyc/word", "retries", "aborted", "util%"
    );

    // Every grid cell is an independent simulation: fan the full
    // (arbiter x error-rate) cross product out at once and reassemble
    // rows afterwards. `parallel_map` preserves input order, so the
    // table below never depends on worker scheduling.
    let grid: Vec<(&str, f64)> = ARBITERS
        .iter()
        .flat_map(|&name| ERROR_RATES.iter().map(move |&rate| (name, rate)))
        .collect();
    let start = Instant::now();
    let results = pool::parallel_map(jobs, &grid, |_, &(name, rate)| run(name, rate));
    let cells: Vec<BusStats> = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    eprintln!(
        "ran {} simulations in {:.3}s with {} worker(s)",
        grid.len(),
        start.elapsed().as_secs_f64(),
        pool::resolve_jobs(jobs).min(grid.len()),
    );

    for (a, name) in ARBITERS.iter().enumerate() {
        let mut baseline = None;
        for (r, rate) in ERROR_RATES.iter().enumerate() {
            let stats = &cells[a * ERROR_RATES.len() + r];
            let latency = mean_latency(stats);
            let baseline = *baseline.get_or_insert(latency);
            println!(
                "{:<10} {:>8.2} {:>9.2} {:>+2.0}% {:>9} {:>9} {:>9.1}",
                name,
                rate,
                latency,
                (latency / baseline - 1.0) * 100.0,
                stats.retries,
                stats.aborted_transactions,
                stats.bus_utilization() * 100.0,
            );
        }
        println!();
    }
    Ok(())
}
