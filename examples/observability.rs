//! Observability tour: windowed metrics, streaming trace sinks, arbiter
//! instrumentation, and phase profiling on a single starved-master
//! system.
//!
//! A four-master bus runs under a static-priority arbiter with `cpu`
//! holding the lowest priority, so it starves — and every layer of the
//! observability stack shows that same story from a different angle:
//!
//! * **Windowed metrics** — per-window bandwidth shares as a time
//!   series, not just an end-of-run mean.
//! * **Streaming trace** — every grant/transfer as a JSONL event,
//!   through the `Arc<Mutex<_>>` sink adapter so we keep a handle to
//!   the sink after the system takes ownership.
//! * **`InstrumentedArbiter`** — decision/contention/per-master grant
//!   counters read from outside the system while it owns the arbiter.
//! * **`PhaseProfiler`** — wall-clock cost of each cycle phase.
//!
//! Run with: `cargo run --release --example observability`

use std::sync::{Arc, Mutex};

use lotterybus_repro::arbiters::InstrumentedArbiter;
use lotterybus_repro::socsim::{BusConfig, JsonlSink, SimPhase, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};

const NAMES: [&str; 4] = ["cpu", "dsp", "dma", "accel"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Priorities 1..4 with `cpu` lowest; saturating traffic everywhere,
    // so the arbiter alone decides who makes progress.
    let arbiter = lotterybus_repro::arbiters::StaticPriorityArbiter::new(vec![1, 2, 3, 4])?;
    let (arbiter, counters) = InstrumentedArbiter::new(arbiter, NAMES.len());

    // The JSONL sink streams into an in-memory buffer here; point it at
    // a `BufWriter<File>` to stream to disk (or use `trace sink=jsonl:`
    // in a CLI spec). The `Arc<Mutex<_>>` wrapper is itself a
    // `TraceSink`, so we can keep one handle and give the other away.
    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
    let spec = GeneratorSpec::poisson(0.03, SizeDist::fixed(16));
    let mut builder = SystemBuilder::new(BusConfig::default())
        .arbiter(arbiter)
        .trace_sink(Box::new(Arc::clone(&sink)))
        .metrics_window(2_000)
        .profiling(true);
    for (i, name) in NAMES.iter().enumerate() {
        builder = builder.master(*name, spec.build_source(i as u64 + 1));
    }
    let mut system = builder.build()?;

    system.warm_up(5_000);
    system.run(40_000);
    system.flush_metrics();
    system.finish_trace()?;

    // 1. Windowed metrics: cpu's share per 2000-cycle window.
    let metrics = system.metrics().expect("metrics were enabled");
    println!("per-window bandwidth share ({} windows of 2000 cycles):", metrics.samples().len());
    for (m, name) in NAMES.iter().enumerate() {
        let bars: String = metrics
            .samples()
            .iter()
            .map(|s| {
                // 9-level bar per window, scaled so 100% = '#'.
                let level = (s.bandwidth_share(m) * 8.0).round() as usize;
                [' ', '.', ':', '-', '=', '+', '*', '%', '#'][level.min(8)]
            })
            .collect();
        let mean = metrics.samples().iter().map(|s| s.bandwidth_share(m)).sum::<f64>()
            / metrics.samples().len() as f64;
        println!("  {name:<6} {:>5.1}%  [{bars}]", mean * 100.0);
    }

    // 2. Arbiter counters, read from our retained handle.
    println!(
        "\narbiter: {} decisions, {} contended, {} idle",
        counters.decisions(),
        counters.contended(),
        counters.idle()
    );
    for (m, name) in NAMES.iter().enumerate() {
        println!("  {name:<6} {:>6} grants", counters.grants(m));
    }

    // 3. Streaming trace: how much did we capture, and did we lose any?
    let events = { sink.lock().unwrap().written() };
    println!(
        "\ntrace: {events} JSONL events streamed, truncated={}, dropped={}",
        system.trace().is_truncated(),
        system.trace().dropped()
    );

    // 4. Phase profile: where did the wall-clock go?
    let profiler = system.profiler();
    println!("\ncycle kernel profile ({} cycles):", profiler.laps());
    for phase in SimPhase::ALL {
        println!(
            "  {:<12} {:>8.3} ms  {:>5.1}%",
            phase.label(),
            profiler.total(phase).as_secs_f64() * 1e3,
            profiler.fraction(phase).unwrap_or(0.0) * 100.0
        );
    }
    Ok(())
}
