//! Hardware cost of the lottery managers (paper §5.2): area in cell
//! grids and single-cycle arbitration frequency, with a per-block
//! breakdown and a scaling sweep over the number of masters.
//!
//! Run with: `cargo run --release --example hw_cost`

use lotterybus_repro::hwmodel::{managers, CellLibrary};

fn main() {
    let lib = CellLibrary::cmos035();

    println!("{}\n", managers::static_lottery_manager(&lib, 4, 8));
    println!("{}\n", managers::dynamic_lottery_manager(&lib, 4, 8));
    println!("{}\n", managers::static_priority_arbiter(&lib, 4));
    println!("{}\n", managers::tdma_arbiter(&lib, 4, 60));

    println!("scaling (total cell grids / arbitration ns):");
    println!("{:>8} {:>22} {:>22}", "masters", "static lottery", "dynamic lottery");
    for n in 2..=10 {
        let s = managers::static_lottery_manager(&lib, n, 8);
        let d = managers::dynamic_lottery_manager(&lib, n, 8);
        println!(
            "{:>8} {:>14.0} / {:>5.2} {:>14.0} / {:>5.2}",
            n, s.total.area_grids, s.total.delay_ns, d.total.area_grids, d.total.delay_ns,
        );
    }
    println!();
    println!("the static manager's LUT doubles per master (2^n entries) but keeps");
    println!("the critical path short; the dynamic manager's adder tree scales");
    println!("gracefully in area at the cost of the slow modulo unit.");
}
