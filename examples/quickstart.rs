//! Quickstart: build a four-master LOTTERYBUS system, run it, and watch
//! the bandwidth shares converge to the ticket ratios.
//!
//! Run with: `cargo run --release --example quickstart`

use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{BusConfig, MasterId, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four components hold lottery tickets in the ratio 1 : 2 : 3 : 4.
    let tickets = TicketAssignment::new(vec![1, 2, 3, 4])?;
    let arbiter = StaticLotteryArbiter::with_seed(tickets.clone(), 42)?;

    // Every component offers far more traffic than its fair share, so
    // the bus is saturated and the arbiter alone decides the allocation.
    let spec = GeneratorSpec::poisson(0.03, SizeDist::fixed(16));
    // `build_kind` + a concrete arbiter select the devirtualized hot
    // loop: per-cycle polls and arbitration compile to direct calls.
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("cpu", spec.build_kind(1))
        .master("dsp", spec.build_kind(2))
        .master("dma", spec.build_kind(3))
        .master("accel", spec.build_kind(4))
        .arbiter(arbiter)
        .build()?;

    system.warm_up(10_000);
    system.run(500_000);

    println!("component  tickets  entitled  measured bandwidth");
    let stats = system.stats();
    for (i, name) in ["cpu", "dsp", "dma", "accel"].iter().enumerate() {
        let id = MasterId::new(i);
        println!(
            "{:<10} {:>7}  {:>7.1}%  {:>7.1}%",
            name,
            tickets.get(id),
            tickets.fraction(id) * 100.0,
            stats.bandwidth_fraction(id) * 100.0,
        );
    }
    println!("bus utilization: {:.1}%", stats.bus_utilization() * 100.0);
    Ok(())
}
