//! Bandwidth control: why lottery arbitration and not static priority?
//!
//! Runs the same saturated four-master workload under a static-priority
//! arbiter, a round-robin arbiter and a lottery arbiter, and prints the
//! resulting allocations side by side — the paper's Example 1 vs
//! Example 3 in one table.
//!
//! Run with: `cargo run --release --example bandwidth_control`

use lotterybus_repro::arbiters::{RoundRobinArbiter, StaticPriorityArbiter};
use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{Arbiter, BusConfig, MasterId, SystemBuilder};
use lotterybus_repro::traffic::classes::saturating_specs;

fn measure(arbiter: Box<dyn Arbiter>) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let mut builder = SystemBuilder::new(BusConfig::default());
    for (i, spec) in saturating_specs(4).into_iter().enumerate() {
        builder = builder.master(format!("C{}", i + 1), spec.build_source(i as u64 + 1));
    }
    let mut system = builder.arbiter(arbiter).build()?;
    system.warm_up(10_000);
    system.run(300_000);
    Ok((0..4).map(|i| system.stats().bandwidth_fraction(MasterId::new(i))).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The designer wants bandwidth split 10% / 20% / 30% / 40%.
    let weights = vec![1u32, 2, 3, 4];

    let priority = measure(Box::new(StaticPriorityArbiter::new(weights.clone())?))?;
    let round_robin = measure(Box::new(RoundRobinArbiter::new(4)?))?;
    let lottery = measure(Box::new(StaticLotteryArbiter::with_seed(
        TicketAssignment::new(weights.clone())?,
        7,
    )?))?;

    println!("goal: bandwidth proportional to weights 1:2:3:4\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "component", "entitled", "priority", "rrobin", "lottery"
    );
    let total: u32 = weights.iter().sum();
    for i in 0..4 {
        println!(
            "{:<12} {:>9.0}% {:>11.1}% {:>9.1}% {:>9.1}%",
            format!("C{} (w={})", i + 1, weights[i]),
            f64::from(weights[i]) / f64::from(total) * 100.0,
            priority[i] * 100.0,
            round_robin[i] * 100.0,
            lottery[i] * 100.0,
        );
    }
    println!();
    println!("static priority starves the low-priority components entirely,");
    println!("round-robin ignores the weights, and only the lottery tracks them.");
    Ok(())
}
