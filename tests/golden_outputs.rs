//! Golden-output regression tests: a miniature suite document with a
//! pinned seed and short windows, snapshotted under `tests/golden/`.
//!
//! The snapshot pins the *numbers*, not just the invariants: any change
//! to arbiter decision order, RNG cadence, fault drawing, or kernel
//! accounting shows up here as a byte diff. The same document is
//! rendered under both kernels, so the golden file doubles as a
//! kernel-equivalence witness in CI.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```console
//! $ REGEN_GOLDEN=1 cargo test --test golden_outputs
//! $ git diff tests/golden/   # review before committing
//! ```

use lotterybus_repro::experiments::json::{Json, ToJson};
use lotterybus_repro::experiments::{self, RunSettings};
use lotterybus_repro::socsim::Kernel;

const GOLDEN_PATH: &str = "tests/golden/suite_mini.json";

/// Pinned settings for the miniature suite: short windows, fixed seed,
/// one worker (worker count never changes results, but pinning it keeps
/// the document's provenance obvious).
fn golden_settings(kernel: Kernel) -> RunSettings {
    RunSettings { warmup: 500, measure: 4_000, seed: 0x60_1DEB, jobs: 1, ..RunSettings::new() }
        .with_kernel(kernel)
}

/// Renders the miniature suite document under the chosen kernel.
fn golden_document(kernel: Kernel) -> String {
    let settings = golden_settings(kernel);
    let doc = Json::obj()
        .field(
            "meta",
            Json::obj()
                .field("seed", settings.seed)
                .field("warmup", settings.warmup)
                .field("measure", settings.measure),
        )
        .field("fig4", experiments::fig4::run(&settings).to_json())
        .field("fig5", experiments::fig5::run_kernel(1, kernel).to_json())
        .field("starvation", experiments::starvation::run(&settings).to_json())
        .field("energy", experiments::energy::run(&settings).to_json());
    doc.render() + "\n"
}

#[test]
fn golden_suite_document_is_stable_under_both_exact_kernels() {
    // The TLM kernel is deliberately absent here: fig4/starvation/
    // energy drive Bernoulli traffic, where it is a bounded
    // approximation rather than byte-exact (its exact subset — fig5 —
    // is pinned by tests/kernel_equivalence.rs instead).
    let cycle = golden_document(Kernel::Cycle);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &cycle).expect("write golden snapshot");
        eprintln!("regenerated {GOLDEN_PATH}");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}; run with REGEN_GOLDEN=1 to create it")
    });
    assert_eq!(
        cycle, golden,
        "cycle-kernel output drifted from the golden snapshot; if the change is \
         intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    );
    let fast = golden_document(Kernel::Fast);
    assert_eq!(
        fast, golden,
        "fast-kernel output differs from the golden snapshot (kernel equivalence broken)"
    );
}
