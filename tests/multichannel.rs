//! Cross-crate integration tests for multi-channel topologies with a
//! lottery manager per channel (paper §4.1).

use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::multichannel::{ChannelId, MultiChannelBuilder, MultiChannelSystem};
use lotterybus_repro::socsim::{Arbiter, BusConfig, Slave, SlaveId};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};

fn lottery(tickets: Vec<u32>, seed: u32) -> Box<dyn Arbiter> {
    Box::new(
        StaticLotteryArbiter::with_seed(TicketAssignment::new(tickets).expect("valid"), seed)
            .expect("valid"),
    )
}

fn cluster_system(cross_load: f64) -> MultiChannelSystem {
    let local = GeneratorSpec::poisson(0.03, SizeDist::fixed(16));
    let cross = GeneratorSpec::poisson(cross_load, SizeDist::fixed(16));
    MultiChannelBuilder::new()
        // Three actors per channel: two local masters + bridge ingress.
        .channel(BusConfig::default(), lottery(vec![1, 2, 3], 11))
        .channel(BusConfig::default(), lottery(vec![1, 2, 3], 22))
        .master("a0", ChannelId::new(0), local.to_slave(0).build_source(1))
        .master("a1", ChannelId::new(0), cross.to_slave(1).build_source(2))
        .master("b0", ChannelId::new(1), local.to_slave(1).build_source(3))
        .master("b1", ChannelId::new(1), cross.to_slave(0).build_source(4))
        .slave(Slave::new(SlaveId::new(0), "mem0"), ChannelId::new(0))
        .slave(Slave::new(SlaveId::new(1), "mem1"), ChannelId::new(1))
        .bridge(ChannelId::new(0), ChannelId::new(1), 4)
        .bridge(ChannelId::new(1), ChannelId::new(0), 4)
        .build()
        .expect("valid topology")
}

#[test]
fn cross_channel_traffic_is_delivered_with_extra_latency() {
    let mut system = cluster_system(0.004);
    system.run(200_000);
    // Everyone gets served.
    for m in 0..4 {
        assert!(system.master_stats(m).transactions > 100, "master {m} starved");
    }
    // Cross-channel masters (1 and 3) pay two arbitration/transfer legs;
    // local masters (0 and 2) pay one.
    let local_latency = system.master_stats(0).cycles_per_word().expect("served");
    let cross_latency = system.master_stats(1).cycles_per_word().expect("served");
    assert!(
        cross_latency > 1.5 * local_latency,
        "cross {cross_latency:.2} vs local {local_latency:.2}"
    );
}

#[test]
fn channel_utilization_reflects_both_local_and_bridged_traffic() {
    let mut system = cluster_system(0.004);
    system.run(100_000);
    for c in 0..2 {
        let stats = system.channel_stats(ChannelId::new(c));
        // local ~0.48 + incoming bridge ~0.06 ≈ 0.55 utilization.
        let util = stats.bus_utilization();
        assert!((0.3..0.95).contains(&util), "channel {c} utilization {util:.2}");
    }
}

#[test]
fn saturated_bridges_do_not_lose_transactions() {
    // Cross traffic heavy enough to hit bridge back-pressure.
    let mut system = cluster_system(0.02);
    system.run(150_000);
    for m in [1usize, 3] {
        let stats = system.master_stats(m);
        assert!(stats.transactions > 50, "cross master {m}: {} txns", stats.transactions);
        // Latency includes queueing but stays finite and sane.
        assert!(stats.cycles_per_word().expect("served") >= 2.0);
    }
}
