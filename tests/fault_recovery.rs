//! Property: no silent starvation under fault injection. For any fault
//! plan (rates bounded away from the degenerate always-faulty corner),
//! with retry enabled and the watchdog armed, every master holding
//! nonzero lottery tickets resolves its whole workload — each issued
//! transaction either completes or is explicitly aborted — within a
//! bounded horizon.

use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{
    BusConfig, Cycle, FaultConfig, MasterId, RetryPolicy, SlaveId, SystemBuilder, TrafficSource,
    Transaction,
};
use proptest::prelude::*;
use std::collections::VecDeque;

struct Replay(VecDeque<Transaction>);

impl TrafficSource for Replay {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.0.front()?.issued_at() <= now {
            self.0.pop_front()
        } else {
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn retryable_workloads_never_starve_silently(
        // Per-master workloads: up to 6 messages of 1–8 words arriving
        // in the first 2 000 cycles.
        traffic in prop::collection::vec(
            prop::collection::vec((0u64..2_000, 1u32..=8), 1..=6),
            2..=4,
        ),
        tickets in prop::collection::vec(1u32..=8, 4),
        // Any mix of fault classes. Rates stay ≤ 0.5: a permanently
        // stalled master or a 100%-dropped grant path is unservable by
        // construction, not a starvation bug.
        error_rate in 0.0f64..=0.5,
        outage_rate in 0.0f64..=0.2,
        drop_rate in 0.0f64..=0.5,
        corrupt_rate in 0.0f64..=0.3,
        stall_rate in 0.0f64..=0.5,
        plan_seed in 0u64..1_000,
    ) {
        let n = traffic.len();
        let fault = FaultConfig {
            slave_error_rate: error_rate,
            slave_outage_rate: outage_rate,
            slave_outage_duration: 16,
            grant_drop_rate: drop_rate,
            grant_corrupt_rate: corrupt_rate,
            master_stall_rate: stall_rate,
            master_stall_max: 8,
            ..FaultConfig::with_seed(plan_seed)
        };
        let mut issued = vec![0u64; n];
        let mut builder = SystemBuilder::new(BusConfig::default())
            .faults(fault)
            .retry_policy(RetryPolicy::exponential(3, 2))
            .timeout(2_048);
        for (i, mut arrivals) in traffic.into_iter().enumerate() {
            issued[i] = arrivals.len() as u64;
            arrivals.sort_by_key(|&(c, _)| c);
            let schedule: VecDeque<Transaction> = arrivals
                .into_iter()
                .map(|(c, w)| Transaction::new(SlaveId::new(0), w, Cycle::new(c)))
                .collect();
            builder = builder.master(format!("m{i}"), Replay(schedule));
        }
        let assignment = TicketAssignment::new(tickets[..n].to_vec()).expect("nonzero tickets");
        let arbiter = StaticLotteryArbiter::with_seed(assignment, (plan_seed as u32).wrapping_mul(2).wrapping_add(1))
            .expect("valid arbiter");
        let mut system = builder.arbiter(arbiter).build().expect("valid system");

        // Bounded horizon: arrivals end by 2 000; each of the ≤ 24
        // messages then needs at most 4 attempts separated by backoffs
        // ≤ 4 096 plus a 2 048-cycle watchdog window. 120 000 cycles
        // dominates that worst case with slack for grant-path faults.
        system.run(120_000);

        let stats = system.stats();
        for (i, &expected) in issued.iter().enumerate() {
            let m = stats.master(MasterId::new(i));
            prop_assert_eq!(
                m.transactions + m.aborted,
                expected,
                "master {} resolved {} of {} issued (completed {} + aborted {})",
                i, m.transactions + m.aborted, expected, m.transactions, m.aborted,
            );
        }
    }
}
