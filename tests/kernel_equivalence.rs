//! Differential testing harness for the fast-forward and TLM kernels.
//!
//! Every suite experiment — and a set of system-level scenarios
//! covering fault injection, recovery, windowed metrics, traces,
//! waveforms, and replica fan-out — runs under both the cycle kernel
//! and the fast-forward kernel. The outputs must match exactly:
//! statistics struct-for-struct, serialized JSON byte-for-byte, trace
//! streams event-for-event. Fast-forward is a pure wall-clock
//! optimization; any divergence here is a kernel bug.
//!
//! The TLM kernel joins the matrix wherever it claims exactness: on
//! forced-outcome systems (periodic/replay arrivals, or any system
//! with metrics or faults enabled, where tenure batching switches
//! itself off) its output must also be byte-identical. Its bounded
//! statistical error on contended memoryless traffic is measured by
//! `suite --bench`, not asserted here.

use lotterybus_cli::{render_metrics, render_report, SimSpec};
use lotterybus_repro::arbiters::FailoverArbiter;
use lotterybus_repro::experiments::json::ToJson;
use lotterybus_repro::experiments::{self, RunSettings};
use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{
    vcd, Arbiter, BusConfig, FaultConfig, Kernel, RetryPolicy, RingSink, SystemBuilder,
};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist, TrafficClass};

/// Short settings so the whole experiment sweep stays debug-build fast.
fn short() -> RunSettings {
    RunSettings { warmup: 1_000, measure: 6_000, jobs: 1, ..RunSettings::new() }
}

/// Runs `experiment` under both kernels and asserts the results (and
/// their serialized JSON) are identical.
fn diff_experiment<T, F>(name: &str, experiment: F)
where
    T: PartialEq + std::fmt::Debug + ToJson,
    F: Fn(&RunSettings) -> T,
{
    let cycle = experiment(&short());
    let fast = experiment(&short().with_fast_forward(true));
    assert_eq!(cycle, fast, "{name}: kernels disagree");
    assert_eq!(
        cycle.to_json().render(),
        fast.to_json().render(),
        "{name}: serialized JSON differs between kernels"
    );
}

#[test]
fn fig4_bandwidth_and_timeseries_match() {
    diff_experiment("fig4", experiments::fig4::run);
    diff_experiment("fig4_timeseries", experiments::fig4::run_timeseries);
}

#[test]
fn fig5_tdma_replay_matches() {
    let cycle = experiments::fig5::run_kernel(1, Kernel::Cycle);
    for kernel in [Kernel::Fast, Kernel::Tlm] {
        let other = experiments::fig5::run_kernel(1, kernel);
        assert_eq!(cycle, other, "fig5: {} kernel disagrees", kernel.name());
        assert_eq!(cycle.to_json().render(), other.to_json().render());
    }
}

#[test]
fn fig6_bandwidth_and_latency_match() {
    diff_experiment("fig6a", experiments::fig6::run_bandwidth);
    diff_experiment("fig6b", |s| experiments::fig6::run_latency(TrafficClass::T6, s));
}

#[test]
fn fig12_dynamic_lottery_surfaces_match() {
    diff_experiment("fig12a", experiments::fig12::run_bandwidth);
    diff_experiment("fig12b", experiments::fig12::run_tdma_latency);
    diff_experiment("fig12c", experiments::fig12::run_lottery_latency);
}

#[test]
fn starvation_sweeps_energy_and_ablations_match() {
    diff_experiment("starvation", experiments::starvation::run);
    diff_experiment("sweeps", experiments::sweeps::run);
    diff_experiment("energy", experiments::energy::run);
    diff_experiment("ablations", experiments::ablations::run);
}

/// A mixed workload with every observability and fault feature on:
/// periodic + bursty + poisson traffic, all five fault classes, retry
/// with backoff, a watchdog timeout, a failover-wrapped lottery, a
/// windowed metrics collector, and a buffered + streamed trace.
fn build_full_system(seed: u64, fast_forward: bool) -> lotterybus_repro::socsim::System {
    let fault = FaultConfig {
        seed,
        slave_error_rate: 0.01,
        slave_outage_rate: 0.002,
        slave_outage_duration: 24,
        grant_drop_rate: 0.005,
        grant_corrupt_rate: 0.003,
        master_stall_rate: 0.004,
        master_stall_max: 6,
    };
    let tickets = TicketAssignment::new(vec![1, 2, 3]).expect("valid");
    let lottery: Box<dyn Arbiter> =
        Box::new(StaticLotteryArbiter::with_seed(tickets, seed as u32 | 1).expect("valid"));
    let arbiter = FailoverArbiter::with_patience(lottery, 3, 64).expect("valid");
    SystemBuilder::new(BusConfig::default())
        .fast_forward(fast_forward)
        .master("periodic", GeneratorSpec::periodic(90, 7, SizeDist::fixed(8)).build_source(seed))
        .master(
            "bursty",
            GeneratorSpec::bursty(2, 5, 1, 40, 120, 3, SizeDist::fixed(4)).build_source(seed + 1),
        )
        .master("poisson", GeneratorSpec::poisson(0.01, SizeDist::fixed(16)).build_source(seed + 2))
        .faults(fault)
        .retry_policy(RetryPolicy { max_retries: 3, backoff_base: 2, backoff_factor: 2 })
        .timeout(200)
        .metrics_window(128)
        .trace_capacity(1 << 16)
        .trace_sink(Box::new(RingSink::new(1 << 16)))
        .arbiter(Box::new(arbiter))
        .build()
        .expect("valid system")
}

#[test]
fn faulty_observed_system_matches_in_every_output_stream() {
    for seed in [3u64, 17, 101] {
        let mut cycle = build_full_system(seed, false);
        let mut fast = build_full_system(seed, true);
        for system in [&mut cycle, &mut fast] {
            system.warm_up(500);
            system.run(20_000);
            system.flush_metrics();
        }
        assert_eq!(cycle.stats(), fast.stats(), "seed {seed}: statistics diverged");
        assert_eq!(cycle.trace(), fast.trace(), "seed {seed}: trace streams diverged");
        assert_eq!(cycle.fault_events(), fast.fault_events(), "seed {seed}: fault logs diverged");
        assert_eq!(
            cycle.metrics().expect("metrics on").samples(),
            fast.metrics().expect("metrics on").samples(),
            "seed {seed}: metrics time series diverged"
        );
        let names: Vec<String> =
            ["periodic", "bursty", "poisson"].iter().map(|s| (*s).to_string()).collect();
        assert_eq!(
            vcd::trace_to_vcd(cycle.trace(), &names, 20_500),
            vcd::trace_to_vcd(fast.trace(), &names, 20_500),
            "seed {seed}: VCD waveforms diverged"
        );
        assert_eq!(cycle.now(), fast.now(), "seed {seed}: clocks diverged");
    }
}

#[test]
fn replica_fanout_matches_across_kernels() {
    // Replicas derive their seeds the way the CLI does; every replica
    // must agree between kernels independently.
    let base_seed = 0xC0FFEEu64;
    for r in 0..3u64 {
        let seed = base_seed.wrapping_add(r.wrapping_mul(0x9E37_79B9_97F4_A7C5));
        let run = |fast: bool| {
            let mut system = SystemBuilder::new(BusConfig::default())
                .fast_forward(fast)
                .master("a", GeneratorSpec::periodic(64, 0, SizeDist::fixed(8)).build_source(seed))
                .master(
                    "b",
                    GeneratorSpec::poisson(0.005, SizeDist::fixed(16)).build_source(seed + 1),
                )
                .arbiter(experiments::common::protocol_arbiter(4, seed))
                .build()
                .expect("valid");
            system.run(15_000);
            system.stats().clone()
        };
        assert_eq!(run(false), run(true), "replica {r} diverged between kernels");
    }
}

#[test]
fn cli_spec_pipeline_matches_across_kernels() {
    // The full CLI path: parse a spec, build the system the way the
    // binary does, and render the user-facing report plus the windowed
    // metrics section. `kernel = fast` must not change a byte.
    let spec_for = |kernel: &str| {
        let text = format!(
            "arbiter = lottery\n\
             burst   = 8\n\
             cycles  = 12000\n\
             warmup  = 1000\n\
             seed    = 99\n\
             kernel  = {kernel}\n\
             fault slave-error rate=0.01\n\
             fault master-stall rate=0.004 max=6\n\
             retry max=3 backoff=2x\n\
             timeout = 256\n\
             failover = 64\n\
             metrics window=512\n\
             master cpu weight=4 load=0.30 size=16\n\
             master dsp weight=2 load=0.05 size=16 burst\n\
             master dma weight=1 load=0.02 size=8 periodic\n"
        );
        SimSpec::parse(&text).expect("valid spec")
    };
    let render = |spec: &SimSpec| {
        let mut builder = SystemBuilder::new(spec.bus_config());
        for (i, master) in spec.masters.iter().enumerate() {
            builder = builder.master(
                master.name.clone(),
                master.generator(i).build_source(spec.seed.wrapping_add(i as u64)),
            );
        }
        if let Some(fault) = spec.fault {
            builder = builder.faults(fault);
        }
        if let Some(retry) = spec.retry {
            builder = builder.retry_policy(retry);
        }
        if let Some(timeout) = spec.timeout {
            builder = builder.timeout(timeout);
        }
        if let Some(window) = spec.metrics {
            builder = builder.metrics_window(window);
        }
        let mut system = builder
            .fast_forward(spec.kernel.is_fast())
            .arbiter(spec.build_arbiter().expect("arbiter"))
            .build()
            .expect("valid system");
        system.warm_up(spec.warmup);
        system.run(spec.cycles);
        system.flush_metrics();
        let mut text = render_report(spec, system.stats());
        if let Some(window) = spec.metrics {
            let samples = system.metrics().expect("metrics enabled").samples().to_vec();
            text += &render_metrics(spec, window, &samples);
        }
        text
    };
    let cycle = render(&spec_for("cycle"));
    let fast = render(&spec_for("fast"));
    assert!(cycle.contains("fault"), "spec fault section missing from the report");
    assert_eq!(cycle, fast, "CLI report differs between kernels");
}

#[test]
fn scenario_and_suite_experiment_match_across_the_full_kernel_matrix() {
    // One declarative scenario: the runner always enables windowed
    // metrics, so even the TLM kernel must render a byte-identical
    // verdict (tenure batching disables itself under observation).
    let text = "scenario kernel-matrix\n\
                seed = 42\n\
                arbiter = lottery\n\
                master cpu weight=3 load=0.20 size=8\n\
                master dma weight=1 load=0.05 size=16\n\
                phase steady duration=20000\n\
                sla losses max=0\n";
    let sc = scenario::Scenario::parse(text).expect("valid scenario");
    let cycle = scenario::run_scenario(&sc, Kernel::Cycle).expect("cycle run");
    for kernel in [Kernel::Fast, Kernel::Tlm] {
        let other = scenario::run_scenario(&sc, kernel).expect("kernel run");
        assert_eq!(
            cycle.to_json().render(),
            other.to_json().render(),
            "scenario verdict differs under the {} kernel",
            kernel.name()
        );
    }

    // One suite experiment on a forced-outcome workload: periodic
    // low-utilization traffic, where the TLM kernel claims outright
    // exactness (every arbitration outcome is forced, so whole-tenure
    // batching loses nothing).
    let settings = short();
    let specs = experiments::common::low_utilization_specs(4);
    let run = |s: &RunSettings| {
        experiments::common::run_system(&specs, experiments::common::protocol_arbiter(4, s.seed), s)
    };
    let cycle_stats = run(&settings);
    for kernel in [Kernel::Fast, Kernel::Tlm] {
        assert_eq!(
            cycle_stats,
            run(&settings.with_kernel(kernel)),
            "suite experiment stats differ under the {} kernel",
            kernel.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Enum dispatch vs boxed dispatch (PR 5).
//
// The enum-dispatch kernel (`ArbiterKind` arbiters, `SourceKind`
// sources) must be observationally identical to the same protocols run
// through the open escape hatches (`ArbiterKind::Custom(Box<dyn
// Arbiter>)`, `Box<dyn TrafficSource>`): same statistics, same trace
// events, same VCD bytes, on randomized systems. Devirtualization is a
// pure wall-clock optimization; any divergence here is a dispatch bug.
// ---------------------------------------------------------------------------

use lotterybus_repro::arbiters::ArbiterKind;
use lotterybus_repro::experiments::hotpath::{hot_arbiter, HOT_PROTOCOLS};
use lotterybus_repro::socsim::{BusStats, TraceEvent, TrafficSource};
use lotterybus_repro::traffic::{SaturateSource, SourceKind};
use proptest::prelude::*;

/// One randomized master's traffic shape; buildable as both an enum
/// source and a boxed source from the same seed.
#[derive(Debug, Clone, Copy)]
enum SourceChoice {
    Periodic { period: u64, phase: u64, words: u32 },
    Poisson { rate_millis: u32, words: u32 },
    Saturate { words: u32 },
}

impl SourceChoice {
    fn spec(self) -> Option<GeneratorSpec> {
        match self {
            SourceChoice::Periodic { period, phase, words } => {
                Some(GeneratorSpec::periodic(period, phase, SizeDist::fixed(words)))
            }
            SourceChoice::Poisson { rate_millis, words } => Some(GeneratorSpec::poisson(
                f64::from(rate_millis) / 1000.0,
                SizeDist::fixed(words),
            )),
            SourceChoice::Saturate { .. } => None,
        }
    }

    fn enum_source(self, seed: u64) -> SourceKind {
        match (self, self.spec()) {
            (_, Some(spec)) => spec.build_kind(seed),
            (SourceChoice::Saturate { words }, None) => {
                SourceKind::from(SaturateSource::new(0, words))
            }
            _ => unreachable!("spec() is None only for Saturate"),
        }
    }

    fn boxed_source(self, seed: u64) -> Box<dyn TrafficSource> {
        match (self, self.spec()) {
            (_, Some(spec)) => spec.build_source(seed),
            (SourceChoice::Saturate { words }, None) => Box::new(SaturateSource::new(0, words)),
            _ => unreachable!("spec() is None only for Saturate"),
        }
    }
}

fn source_choice() -> impl Strategy<Value = SourceChoice> {
    prop_oneof![
        (10u64..200, 0u64..50, 1u32..24)
            .prop_map(|(period, phase, words)| { SourceChoice::Periodic { period, phase, words } }),
        (1u32..200, 1u32..24)
            .prop_map(|(rate_millis, words)| SourceChoice::Poisson { rate_millis, words }),
        (1u32..24).prop_map(|words| SourceChoice::Saturate { words }),
    ]
}

/// Everything observable from one dispatch run.
fn dispatch_outputs<S: TrafficSource>(
    sources: Vec<S>,
    arbiter: ArbiterKind,
    cycles: u64,
) -> (BusStats, Vec<TraceEvent>, String) {
    let mut builder: SystemBuilder<ArbiterKind, S> =
        SystemBuilder::new(BusConfig::default()).trace_capacity(1 << 14);
    let mut names = Vec::new();
    for (i, source) in sources.into_iter().enumerate() {
        let name = format!("M{}", i + 1);
        builder = builder.master(name.clone(), source);
        names.push(name);
    }
    let mut system = builder.arbiter(arbiter).build().expect("valid random system");
    system.run(cycles);
    let events = system.trace().events().to_vec();
    let waveform = vcd::trace_to_vcd(system.trace(), &names, cycles);
    (system.stats().clone(), events, waveform)
}

// ---------------------------------------------------------------------------
// Fleet lockstep kernel vs scalar kernels (PR 9).
//
// The SoA fleet kernel advances N independent systems per cycle over
// contiguous state. It must be *lane-exact*: every lane's statistics,
// trace stream, and windowed metrics byte-identical to the same system
// run solo through the scalar cycle kernel. The matrix covers every
// suite experiment workload shape, the committed scenario library, and
// a full-observability mixed fleet.
// ---------------------------------------------------------------------------

use lotterybus_repro::experiments::fleet::{run_systems_fleet, FleetJob};
use lotterybus_repro::socsim::{Fleet, LaneBuilder, Slave, SlaveId};

/// The suite's three workload shapes: saturated, mostly idle, and a
/// weighted Bernoulli mix (the load-sweep cell at 85% offered load).
fn suite_workloads() -> Vec<(&'static str, Vec<GeneratorSpec>)> {
    let weighted: Vec<GeneratorSpec> = [1u32, 2, 3, 4]
        .iter()
        .map(|&w| GeneratorSpec::poisson(0.85 * f64::from(w) / 10.0 / 16.0, SizeDist::fixed(16)))
        .collect();
    vec![
        ("saturating", lotterybus_repro::traffic::classes::saturating_specs(4)),
        ("low-utilization", experiments::common::low_utilization_specs(4)),
        ("weighted-poisson", weighted),
    ]
}

#[test]
fn fleet_matrix_every_suite_workload_lane_matches_its_scalar_run() {
    // All (protocol × workload) combinations of the suite's experiment
    // matrix as lanes of ONE fleet, each compared to its solo scalar
    // cycle-kernel run.
    let settings = short();
    let cells: Vec<(usize, &'static str, Vec<GeneratorSpec>)> = (0..5)
        .flat_map(|p| suite_workloads().into_iter().map(move |(name, specs)| (p, name, specs)))
        .collect();
    let jobs: Vec<FleetJob> = cells
        .iter()
        .map(|(p, _, specs)| {
            (specs.clone(), experiments::common::protocol_arbiter(*p, settings.seed))
        })
        .collect();
    let packed = run_systems_fleet(jobs, &settings);
    for ((p, name, specs), lane_stats) in cells.iter().zip(&packed) {
        let solo = experiments::common::run_system(
            specs,
            experiments::common::protocol_arbiter(*p, settings.seed),
            &settings,
        );
        assert_eq!(
            *lane_stats, solo,
            "protocol {p} on the {name} workload: fleet lane diverged from its scalar run"
        );
    }
}

#[test]
fn fleet_lanes_reproduce_scalar_traces_and_metrics_byte_for_byte() {
    // A full-observability mixed fleet: every lane traces into a ring
    // and samples windowed metrics, with heterogeneous sources, wait
    // states, and master counts. Stats, trace events, and metric
    // samples must all match the solo scalar run.
    let seed = 0xFEE7u64;
    // Sources carry RNG state and are not `Clone`, so each shape is a
    // recipe evaluated once for the fleet lane and once for the solo run.
    let sources = |shape: usize| -> Vec<SourceKind> {
        match shape {
            0 => vec![
                GeneratorSpec::periodic(60, 3, SizeDist::fixed(8)).build_kind(seed),
                GeneratorSpec::poisson(0.02, SizeDist::fixed(16)).build_kind(seed + 1),
                SourceKind::from(SaturateSource::new(0, 4)),
            ],
            1 => vec![
                SourceKind::from(SaturateSource::new(0, 8)),
                SourceKind::from(SaturateSource::new(0, 8)),
            ],
            _ => vec![
                GeneratorSpec::periodic(200, 0, SizeDist::fixed(4)).build_kind(seed + 2),
                GeneratorSpec::periodic(170, 11, SizeDist::fixed(6)).build_kind(seed + 3),
            ],
        }
    };
    let shapes = [(0usize, 0u32, "mixed"), (1, 2, "stalled-saturate"), (2, 0, "idle-heavy")];
    let lane_for = |&(shape, wait, _): &(usize, u32, &str)| {
        let mut lane: LaneBuilder<ArbiterKind, SourceKind> = LaneBuilder::new(BusConfig::default());
        lane = lane
            .slave(Slave::with_wait_states(SlaveId::new(0), "mem", wait))
            .trace_capacity(1 << 14)
            .metrics_window(256);
        for (i, source) in sources(shape).into_iter().enumerate() {
            lane = lane.master(format!("M{}", i + 1), source);
        }
        lane.arbiter(hot_arbiter(HOT_PROTOCOLS[1], seed))
    };
    let mut fleet =
        Fleet::build(shapes.iter().map(lane_for).collect()).expect("matrix lanes are valid");
    fleet.warm_up(300);
    fleet.run(12_000);
    fleet.flush_metrics();
    for (lane, &(shape, wait, name)) in shapes.iter().enumerate() {
        let mut builder: SystemBuilder<ArbiterKind, SourceKind> =
            SystemBuilder::new(BusConfig::default())
                .slave(Slave::with_wait_states(SlaveId::new(0), "mem", wait))
                .trace_capacity(1 << 14)
                .metrics_window(256);
        for (i, source) in sources(shape).into_iter().enumerate() {
            builder = builder.master(format!("M{}", i + 1), source);
        }
        let mut solo = builder.arbiter(hot_arbiter(HOT_PROTOCOLS[1], seed)).build().expect("valid");
        solo.warm_up(300);
        solo.run(12_000);
        solo.flush_metrics();
        assert_eq!(fleet.stats(lane), solo.stats(), "{name}: statistics diverged");
        assert_eq!(
            fleet.trace(lane).events(),
            solo.trace().events(),
            "{name}: trace streams diverged"
        );
        assert_eq!(
            fleet.metrics(lane).expect("metrics on").samples(),
            solo.metrics().expect("metrics on").samples(),
            "{name}: metrics time series diverged"
        );
        assert_eq!(fleet.now(lane), solo.now(), "{name}: clocks diverged");
    }
}

#[test]
fn fleet_scenario_library_matrix_matches_scalar_verdicts() {
    // The whole committed scenario library through the fleet runner:
    // every scenario's verdict JSON must be byte-identical to its solo
    // scalar cycle-kernel run (ineligible scenarios take the scalar
    // fallback inside the runner and must *also* match).
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scenario"))
        .collect();
    files.sort();
    assert!(files.len() >= 25, "the library ships at least 25 scenarios, found {}", files.len());
    let library: Vec<scenario::Scenario> = files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).expect("readable");
            scenario::Scenario::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", f.display()))
        })
        .collect();
    let refs: Vec<&scenario::Scenario> = library.iter().collect();
    let packed = scenario::run_scenarios_fleet(&refs).expect("fleet pack runs");
    for (sc, fleet_outcome) in library.iter().zip(&packed) {
        let scalar = scenario::run_scenario(sc, Kernel::Cycle).expect("scalar run");
        assert_eq!(
            fleet_outcome.to_json().render(),
            scalar.to_json().render(),
            "scenario `{}`: fleet verdict diverged from the scalar cycle kernel",
            sc.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn enum_dispatch_matches_boxed_dispatch_on_random_systems(
        choices in prop::collection::vec(source_choice(), 4),
        protocol_index in 0usize..HOT_PROTOCOLS.len(),
        seed in 1u64..1_000_000,
        cycles in 500u64..4_000,
    ) {
        let protocol = HOT_PROTOCOLS[protocol_index];
        let enum_sources: Vec<SourceKind> = choices
            .iter()
            .enumerate()
            .map(|(i, c)| c.enum_source(seed.wrapping_add(i as u64)))
            .collect();
        let boxed_sources: Vec<Box<dyn TrafficSource>> = choices
            .iter()
            .enumerate()
            .map(|(i, c)| c.boxed_source(seed.wrapping_add(i as u64)))
            .collect();

        let direct = dispatch_outputs(enum_sources, hot_arbiter(protocol, seed), cycles);
        let boxed = dispatch_outputs(
            boxed_sources,
            ArbiterKind::Custom(Box::new(hot_arbiter(protocol, seed))),
            cycles,
        );

        prop_assert_eq!(&direct.0, &boxed.0, "{}: statistics diverged", protocol);
        prop_assert_eq!(&direct.1, &boxed.1, "{}: trace events diverged", protocol);
        prop_assert_eq!(&direct.2, &boxed.2, "{}: VCD bytes diverged", protocol);
    }
}
