//! Golden fleet snapshot: a pinned heterogeneous lane pack, its
//! per-lane numbers snapshotted under `tests/golden/`.
//!
//! The snapshot pins the fleet kernel's *numbers* — utilization,
//! shares, latencies, completion counts per lane — so any change to the
//! SoA run loop's decision order, skip legality, or batching shows up
//! as a byte diff. The same document is also rendered from solo scalar
//! runs of each lane, so the golden file doubles as a lane-exactness
//! witness in CI.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```console
//! $ REGEN_GOLDEN=1 cargo test --test golden_fleet
//! $ git diff tests/golden/   # review before committing
//! ```

use lotterybus_repro::arbiters::ArbiterKind;
use lotterybus_repro::experiments::hotpath::{hot_arbiter, HOT_PROTOCOLS};
use lotterybus_repro::experiments::json::Json;
use lotterybus_repro::socsim::{BusConfig, BusStats, Fleet, LaneBuilder, MasterId, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SaturateSource, SizeDist, SourceKind};

const GOLDEN_PATH: &str = "tests/golden/fleet_pack.json";
const SEED: u64 = 0x60_1DF1;
const WARMUP: u64 = 500;
const MEASURE: u64 = 8_000;

/// The pinned pack: every lineup protocol, one lane each, alternating
/// between the saturated hot-path workload and a sparse mixed one.
fn pack() -> Vec<(&'static str, Vec<SourceKind>)> {
    HOT_PROTOCOLS
        .iter()
        .enumerate()
        .map(|(i, &protocol)| {
            let sources = if i % 2 == 0 {
                (0..4).map(|_| SourceKind::from(SaturateSource::new(0, 8))).collect()
            } else {
                vec![
                    GeneratorSpec::periodic(40, 7, SizeDist::fixed(8))
                        .build_kind(SEED.wrapping_add(i as u64)),
                    GeneratorSpec::poisson(0.03, SizeDist::fixed(16))
                        .build_kind(SEED.wrapping_add(i as u64 + 100)),
                    SourceKind::from(SaturateSource::new(0, 4)),
                    GeneratorSpec::periodic(90, 31, SizeDist::fixed(12))
                        .build_kind(SEED.wrapping_add(i as u64 + 200)),
                ]
            };
            (protocol, sources)
        })
        .collect()
}

fn arbiter(protocol: &str) -> ArbiterKind {
    hot_arbiter(protocol, SEED)
}

/// One lane's numbers as a JSON object.
fn lane_json(protocol: &str, stats: &BusStats) -> Json {
    let masters = stats.masters().len();
    let shares: Vec<Json> =
        (0..masters).map(|i| stats.bandwidth_fraction(MasterId::new(i)).into()).collect();
    let latencies: Vec<Json> = (0..masters)
        .map(|i| match stats.master(MasterId::new(i)).cycles_per_word() {
            Some(v) => v.into(),
            None => Json::Null,
        })
        .collect();
    let completed: u64 = stats.masters().iter().map(|m| m.transactions).sum();
    Json::obj()
        .field("protocol", protocol)
        .field("utilization", stats.bus_utilization())
        .field("shares", Json::Arr(shares))
        .field("latencies", Json::Arr(latencies))
        .field("completed", completed)
}

fn document(stats: &[(&str, BusStats)]) -> String {
    let lanes: Vec<Json> = stats.iter().map(|(p, s)| lane_json(p, s)).collect();
    Json::obj()
        .field(
            "meta",
            Json::obj().field("seed", SEED).field("warmup", WARMUP).field("measure", MEASURE),
        )
        .field("lanes", Json::Arr(lanes))
        .render()
        + "\n"
}

#[test]
fn golden_fleet_pack_is_stable_and_lane_exact() {
    let lanes = pack()
        .into_iter()
        .map(|(protocol, sources)| {
            let mut lane: LaneBuilder<ArbiterKind, SourceKind> =
                LaneBuilder::new(BusConfig::default());
            for (i, source) in sources.into_iter().enumerate() {
                lane = lane.master(format!("C{}", i + 1), source);
            }
            lane.arbiter(arbiter(protocol))
        })
        .collect();
    let mut fleet = Fleet::build(lanes).expect("golden pack is valid");
    fleet.warm_up(WARMUP);
    fleet.run(MEASURE);
    let fleet_stats: Vec<(&str, BusStats)> =
        HOT_PROTOCOLS.iter().enumerate().map(|(i, &p)| (p, fleet.stats(i).clone())).collect();
    let fleet_doc = document(&fleet_stats);

    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &fleet_doc).expect("write golden snapshot");
        eprintln!("regenerated {GOLDEN_PATH}");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}; run with REGEN_GOLDEN=1 to create it")
    });
    assert_eq!(
        fleet_doc, golden,
        "fleet output drifted from the golden snapshot; if the change is \
         intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    );

    // The same document from solo scalar runs: the snapshot doubles as
    // a lane-exactness witness.
    let scalar_stats: Vec<(&str, BusStats)> = pack()
        .into_iter()
        .map(|(protocol, sources)| {
            let mut builder: SystemBuilder<ArbiterKind, SourceKind> =
                SystemBuilder::new(BusConfig::default());
            for (i, source) in sources.into_iter().enumerate() {
                builder = builder.master(format!("C{}", i + 1), source);
            }
            let mut system =
                builder.arbiter(arbiter(protocol)).build().expect("golden lane is valid");
            system.warm_up(WARMUP);
            system.run(MEASURE);
            (protocol, system.stats().clone())
        })
        .collect();
    assert_eq!(
        document(&scalar_stats),
        golden,
        "solo scalar runs differ from the golden fleet snapshot (lane exactness broken)"
    );
}
