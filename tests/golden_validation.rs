//! Golden snapshot of the analytic-model validation grid: the full
//! predicted-vs-measured table at pinned quick settings, byte-exact.
//!
//! The snapshot pins both sides of every cell — the closed-form
//! prediction *and* the simulated measurement — so any drift in the
//! analytic derivations, the arbiters, the traffic generators, or the
//! error accounting shows up as a byte diff. It is also rendered at
//! two worker counts, so the grid doubles as a parallel-determinism
//! witness.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```console
//! $ REGEN_GOLDEN=1 cargo test --test golden_validation
//! $ git diff tests/golden/   # review before committing
//! ```

use lotterybus_repro::experiments::json::ToJson;
use lotterybus_repro::experiments::{validate, RunSettings};

const GOLDEN_PATH: &str = "tests/golden/validate_grid.json";

/// Pinned settings: short windows, fixed seed, one worker.
fn golden_settings() -> RunSettings {
    RunSettings { warmup: 2_000, measure: 30_000, seed: 0x60_1DEB, jobs: 1, ..RunSettings::quick() }
}

#[test]
fn golden_validation_grid_is_stable_and_jobs_invariant() {
    let grid = validate::run(&golden_settings());
    let document = grid.to_json().render() + "\n";
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &document).expect("write golden snapshot");
        eprintln!("regenerated {GOLDEN_PATH}");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}; run with REGEN_GOLDEN=1 to create it")
    });
    assert_eq!(
        document, golden,
        "validation grid drifted from the golden snapshot; if the change is \
         intentional (model or simulator behaviour), regenerate with \
         REGEN_GOLDEN=1 and review the diff"
    );
    // The grid fans its simulations out over a worker pool; the worker
    // count must never change a single byte of the document.
    let parallel = validate::run(&golden_settings().with_jobs(4));
    assert_eq!(
        parallel.to_json().render() + "\n",
        golden,
        "validation grid differs across worker counts"
    );
}

#[test]
fn golden_grid_errors_stay_inside_the_documented_bounds() {
    // The DESIGN.md error table promises these envelopes at full
    // windows; the quick grid is noisier, so the bounds here are the
    // looser CI tripwire, not the documented numbers.
    let summary = validate::run(&golden_settings()).summary();
    assert!(summary.share_cells > 50, "grid lost share cells: {}", summary.share_cells);
    assert!(
        summary.share_max_abs_error < 0.05,
        "share error blew up: {}",
        summary.share_max_abs_error
    );
    assert!(
        summary.latency_max_rel_error < 1.0,
        "latency error blew up: {}",
        summary.latency_max_rel_error
    );
}
