//! Property-based tests over the core data structures and protocol
//! invariants, spanning crates.

use lotterybus_repro::arbiters::{
    RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, WheelLayout,
};
use lotterybus_repro::lottery::{
    draw_winner, partial_sums, DynamicLotteryArbiter, Lfsr, StaticLotteryArbiter, TicketAssignment,
};
use lotterybus_repro::socsim::{Arbiter, Cycle, MasterId, RequestMap};
use proptest::prelude::*;

/// Builds a request map for `n` masters from a pending bitmask.
fn map_from_mask(n: usize, mask: u32) -> RequestMap {
    let mut map = RequestMap::new(n);
    for i in 0..n {
        if (mask >> i) & 1 == 1 {
            map.set_pending(MasterId::new(i), 8);
        }
    }
    map
}

proptest! {
    #[test]
    fn partial_sums_are_monotone_and_total_matches(
        tickets in prop::collection::vec(0u32..1000, 1..12),
        mask in 0u32..4096,
    ) {
        let n = tickets.len();
        let map = map_from_mask(n, mask);
        let (sums, total) = partial_sums(&map, &tickets);
        let mut prev = 0u64;
        for &s in &sums[..n] {
            prop_assert!(s >= prev, "partial sums must be non-decreasing");
            prev = s;
        }
        prop_assert_eq!(sums[n - 1], total);
        let expected: u64 = (0..n)
            .filter(|&i| map.is_pending(MasterId::new(i)))
            .map(|i| u64::from(tickets[i]))
            .sum();
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn draw_winner_is_pending_and_holds_tickets(
        tickets in prop::collection::vec(0u32..100, 1..10),
        mask in 0u32..1024,
        draw in 0u64..10_000,
    ) {
        let n = tickets.len();
        let map = map_from_mask(n, mask);
        let (_, total) = partial_sums(&map, &tickets);
        match draw_winner(&map, &tickets, draw) {
            Some(winner) => {
                prop_assert!(map.is_pending(winner));
                prop_assert!(tickets[winner.index()] > 0);
                prop_assert!(draw < total);
            }
            None => prop_assert!(total == 0 || draw >= total),
        }
    }

    #[test]
    fn scaling_hits_a_power_of_two_and_preserves_ratios(
        tickets in prop::collection::vec(0u32..500, 1..16)
            .prop_filter("need one nonzero", |t| t.iter().any(|&x| x > 0)),
    ) {
        let original = TicketAssignment::new(tickets).unwrap();
        let scaled = original.scaled_to_power_of_two();
        prop_assert!(scaled.total().is_power_of_two());
        prop_assert_eq!(original.masters(), scaled.masters());
        for i in 0..original.masters() {
            let id = MasterId::new(i);
            // Zero holders stay zero; nonzero holders stay enfranchised.
            prop_assert_eq!(original.get(id) == 0, scaled.get(id) == 0);
            let err = (original.fraction(id) - scaled.fraction(id)).abs();
            prop_assert!(err < 0.13, "master {} fraction drifted by {}", i, err);
        }
    }

    #[test]
    fn static_lottery_always_grants_a_pending_master(
        tickets in prop::collection::vec(1u32..50, 2..8),
        masks in prop::collection::vec(1u32..256, 1..50),
        seed in 1u32..u32::MAX,
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let mut arbiter = StaticLotteryArbiter::with_seed(assignment, seed).unwrap();
        for (k, mask) in masks.into_iter().enumerate() {
            let mask = mask & ((1 << n) - 1);
            let map = map_from_mask(n, mask);
            match arbiter.arbitrate(&map, Cycle::new(k as u64)) {
                Some(grant) => {
                    prop_assert!(map.is_pending(grant.master));
                    prop_assert!(grant.max_words > 0);
                }
                None => prop_assert!(map.is_empty()),
            }
        }
    }

    #[test]
    fn dynamic_lottery_always_grants_a_pending_master(
        tickets in prop::collection::vec(0u32..50, 2..8)
            .prop_filter("need one nonzero", |t| t.iter().any(|&x| x > 0)),
        masks in prop::collection::vec(1u32..256, 1..50),
        seed in 1u32..u32::MAX,
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let mut arbiter = DynamicLotteryArbiter::with_seed(assignment, seed).unwrap();
        for (k, mask) in masks.into_iter().enumerate() {
            let mask = mask & ((1 << n) - 1);
            let map = map_from_mask(n, mask);
            if let Some(grant) = arbiter.arbitrate(&map, Cycle::new(k as u64)) {
                prop_assert!(map.is_pending(grant.master));
            } else {
                prop_assert!(map.is_empty());
            }
        }
    }

    #[test]
    fn static_priority_grants_the_maximum_priority_requester(
        perm_seed in 0usize..24,
        mask in 1u32..16,
    ) {
        // Enumerate 4-master priority permutations via the seed.
        let mut priorities = vec![1u32, 2, 3, 4];
        for k in 0..perm_seed {
            priorities.swap(k % 3, (k + 1) % 4);
        }
        let mut sorted = priorities.clone();
        sorted.sort_unstable();
        prop_assume!(sorted == vec![1, 2, 3, 4]);
        let mut arbiter = StaticPriorityArbiter::new(priorities.clone()).unwrap();
        let map = map_from_mask(4, mask);
        let winner = arbiter.arbitrate(&map, Cycle::ZERO).unwrap().master;
        let best = (0..4)
            .filter(|&i| map.is_pending(MasterId::new(i)))
            .max_by_key(|&i| priorities[i])
            .unwrap();
        prop_assert_eq!(winner.index(), best);
    }

    #[test]
    fn tdma_saturated_grants_match_slot_counts_exactly(
        slots in prop::collection::vec(1u32..6, 2..6),
        layout in prop::sample::select(vec![WheelLayout::Contiguous, WheelLayout::Interleaved]),
    ) {
        let n = slots.len();
        let mut arbiter = TdmaArbiter::new(&slots, layout).unwrap();
        let map = map_from_mask(n, (1 << n) - 1);
        let wheel: u32 = slots.iter().sum();
        let rotations = 20u32;
        let mut wins = vec![0u32; n];
        for k in 0..(wheel * rotations) {
            let grant = arbiter.arbitrate(&map, Cycle::new(u64::from(k))).unwrap();
            prop_assert_eq!(grant.max_words, 1, "TDMA grants single words");
            wins[grant.master.index()] += 1;
        }
        for i in 0..n {
            prop_assert_eq!(wins[i], slots[i] * rotations, "master {} slot share", i);
        }
    }

    #[test]
    fn round_robin_is_fair_over_any_window(
        n in 2usize..8,
        rounds in 1u32..20,
    ) {
        let mut arbiter = RoundRobinArbiter::new(n).unwrap();
        let map = map_from_mask(n, (1 << n) - 1);
        let mut wins = vec![0u32; n];
        for k in 0..(rounds * n as u32) {
            wins[arbiter.arbitrate(&map, Cycle::new(u64::from(k))).unwrap().master.index()] += 1;
        }
        for &w in &wins {
            prop_assert_eq!(w, rounds);
        }
    }

    #[test]
    fn lfsr_never_reaches_zero_and_draws_stay_bounded(
        width in 2u32..=32,
        seed in 0u32..u32::MAX,
        bounds in prop::collection::vec(1u32..1_000_000, 1..20),
    ) {
        let mut lfsr = Lfsr::new(width, seed);
        for _ in 0..100 {
            lfsr.step();
            prop_assert_ne!(lfsr.state(), 0);
        }
        let mut source = lotterybus_repro::lottery::LfsrSource::new(width, seed);
        use lotterybus_repro::lottery::RandomSource;
        for bound in bounds {
            prop_assert!(source.draw(bound) < bound);
        }
    }
}
