//! Property-based tests over the core data structures and protocol
//! invariants, spanning crates — including the fast-forward kernel's
//! two contracts: cycle-exact equivalence with the reference kernel on
//! random systems, and the idle-horizon never crossing an event.

use lotterybus_repro::arbiters::{
    RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, WheelLayout,
};
use lotterybus_repro::experiments::common::protocol_arbiter;
use lotterybus_repro::lottery::{
    draw_winner, partial_sums, DynamicLotteryArbiter, Lfsr, StaticLotteryArbiter, TicketAssignment,
};
use lotterybus_repro::socsim::{Arbiter, Cycle, MasterId, RequestMap};
use lotterybus_repro::socsim::{BusConfig, FaultConfig, RetryPolicy, System, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};
use proptest::prelude::*;

/// Builds a request map for `n` masters from a pending bitmask.
fn map_from_mask(n: usize, mask: u32) -> RequestMap {
    let mut map = RequestMap::new(n);
    for i in 0..n {
        if (mask >> i) & 1 == 1 {
            map.set_pending(MasterId::new(i), 8);
        }
    }
    map
}

proptest! {
    #[test]
    fn partial_sums_are_monotone_and_total_matches(
        tickets in prop::collection::vec(0u32..1000, 1..12),
        mask in 0u32..4096,
    ) {
        let n = tickets.len();
        let map = map_from_mask(n, mask);
        let (sums, total) = partial_sums(&map, &tickets);
        let mut prev = 0u64;
        for &s in &sums[..n] {
            prop_assert!(s >= prev, "partial sums must be non-decreasing");
            prev = s;
        }
        prop_assert_eq!(sums[n - 1], total);
        let expected: u64 = (0..n)
            .filter(|&i| map.is_pending(MasterId::new(i)))
            .map(|i| u64::from(tickets[i]))
            .sum();
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn draw_winner_is_pending_and_holds_tickets(
        tickets in prop::collection::vec(0u32..100, 1..10),
        mask in 0u32..1024,
        draw in 0u64..10_000,
    ) {
        let n = tickets.len();
        let map = map_from_mask(n, mask);
        let (_, total) = partial_sums(&map, &tickets);
        match draw_winner(&map, &tickets, draw) {
            Some(winner) => {
                prop_assert!(map.is_pending(winner));
                prop_assert!(tickets[winner.index()] > 0);
                prop_assert!(draw < total);
            }
            None => prop_assert!(total == 0 || draw >= total),
        }
    }

    #[test]
    fn scaling_hits_a_power_of_two_and_preserves_ratios(
        tickets in prop::collection::vec(0u32..500, 1..16)
            .prop_filter("need one nonzero", |t| t.iter().any(|&x| x > 0)),
    ) {
        let original = TicketAssignment::new(tickets).unwrap();
        let scaled = original.scaled_to_power_of_two();
        prop_assert!(scaled.total().is_power_of_two());
        prop_assert_eq!(original.masters(), scaled.masters());
        for i in 0..original.masters() {
            let id = MasterId::new(i);
            // Zero holders stay zero; nonzero holders stay enfranchised.
            prop_assert_eq!(original.get(id) == 0, scaled.get(id) == 0);
            let err = (original.fraction(id) - scaled.fraction(id)).abs();
            prop_assert!(err < 0.13, "master {} fraction drifted by {}", i, err);
        }
    }

    #[test]
    fn static_lottery_always_grants_a_pending_master(
        tickets in prop::collection::vec(1u32..50, 2..8),
        masks in prop::collection::vec(1u32..256, 1..50),
        seed in 1u32..u32::MAX,
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let mut arbiter = StaticLotteryArbiter::with_seed(assignment, seed).unwrap();
        for (k, mask) in masks.into_iter().enumerate() {
            let mask = mask & ((1 << n) - 1);
            let map = map_from_mask(n, mask);
            match arbiter.arbitrate(&map, Cycle::new(k as u64)) {
                Some(grant) => {
                    prop_assert!(map.is_pending(grant.master));
                    prop_assert!(grant.max_words > 0);
                }
                None => prop_assert!(map.is_empty()),
            }
        }
    }

    #[test]
    fn dynamic_lottery_always_grants_a_pending_master(
        tickets in prop::collection::vec(0u32..50, 2..8)
            .prop_filter("need one nonzero", |t| t.iter().any(|&x| x > 0)),
        masks in prop::collection::vec(1u32..256, 1..50),
        seed in 1u32..u32::MAX,
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let mut arbiter = DynamicLotteryArbiter::with_seed(assignment, seed).unwrap();
        for (k, mask) in masks.into_iter().enumerate() {
            let mask = mask & ((1 << n) - 1);
            let map = map_from_mask(n, mask);
            if let Some(grant) = arbiter.arbitrate(&map, Cycle::new(k as u64)) {
                prop_assert!(map.is_pending(grant.master));
            } else {
                prop_assert!(map.is_empty());
            }
        }
    }

    #[test]
    fn static_priority_grants_the_maximum_priority_requester(
        perm_seed in 0usize..24,
        mask in 1u32..16,
    ) {
        // Enumerate 4-master priority permutations via the seed.
        let mut priorities = vec![1u32, 2, 3, 4];
        for k in 0..perm_seed {
            priorities.swap(k % 3, (k + 1) % 4);
        }
        let mut sorted = priorities.clone();
        sorted.sort_unstable();
        prop_assume!(sorted == vec![1, 2, 3, 4]);
        let mut arbiter = StaticPriorityArbiter::new(priorities.clone()).unwrap();
        let map = map_from_mask(4, mask);
        let winner = arbiter.arbitrate(&map, Cycle::ZERO).unwrap().master;
        let best = (0..4)
            .filter(|&i| map.is_pending(MasterId::new(i)))
            .max_by_key(|&i| priorities[i])
            .unwrap();
        prop_assert_eq!(winner.index(), best);
    }

    #[test]
    fn tdma_saturated_grants_match_slot_counts_exactly(
        slots in prop::collection::vec(1u32..6, 2..6),
        layout in prop::sample::select(vec![WheelLayout::Contiguous, WheelLayout::Interleaved]),
    ) {
        let n = slots.len();
        let mut arbiter = TdmaArbiter::new(&slots, layout).unwrap();
        let map = map_from_mask(n, (1 << n) - 1);
        let wheel: u32 = slots.iter().sum();
        let rotations = 20u32;
        let mut wins = vec![0u32; n];
        for k in 0..(wheel * rotations) {
            let grant = arbiter.arbitrate(&map, Cycle::new(u64::from(k))).unwrap();
            prop_assert_eq!(grant.max_words, 1, "TDMA grants single words");
            wins[grant.master.index()] += 1;
        }
        for i in 0..n {
            prop_assert_eq!(wins[i], slots[i] * rotations, "master {} slot share", i);
        }
    }

    #[test]
    fn round_robin_is_fair_over_any_window(
        n in 2usize..8,
        rounds in 1u32..20,
    ) {
        let mut arbiter = RoundRobinArbiter::new(n).unwrap();
        let map = map_from_mask(n, (1 << n) - 1);
        let mut wins = vec![0u32; n];
        for k in 0..(rounds * n as u32) {
            wins[arbiter.arbitrate(&map, Cycle::new(u64::from(k))).unwrap().master.index()] += 1;
        }
        for &w in &wins {
            prop_assert_eq!(w, rounds);
        }
    }

    #[test]
    fn lfsr_never_reaches_zero_and_draws_stay_bounded(
        width in 2u32..=32,
        seed in 0u32..u32::MAX,
        bounds in prop::collection::vec(1u32..1_000_000, 1..20),
    ) {
        let mut lfsr = Lfsr::new(width, seed);
        for _ in 0..100 {
            lfsr.step();
            prop_assert_ne!(lfsr.state(), 0);
        }
        let mut source = lotterybus_repro::lottery::LfsrSource::new(width, seed);
        use lotterybus_repro::lottery::RandomSource;
        for bound in bounds {
            prop_assert!(source.draw(bound) < bound);
        }
    }
}

/// One random master: an arrival-process kind plus raw parameters,
/// mapped onto a [`GeneratorSpec`].
fn random_generator(kind: u8, a: u64, b: u64, size: u32) -> GeneratorSpec {
    let size = SizeDist::fixed(size);
    match kind % 3 {
        0 => GeneratorSpec::periodic(20 + a % 180, b % 100, size),
        1 => GeneratorSpec::poisson(0.001 + (a % 30) as f64 / 1_000.0, size),
        _ => GeneratorSpec::bursty(2, 4, 1, 20 + a % 80, 120 + b % 200, b % 7, size),
    }
}

/// Builds a random four-master system from proptest-drawn parameters:
/// one of the five lineup arbiters, mixed arrival processes, and
/// (optionally) fault injection with retry and a watchdog.
fn random_system(
    arb: usize,
    masters: &[(u8, u64, u64, u32)],
    with_faults: bool,
    seed: u64,
    fast_forward: bool,
) -> System<lotterybus_repro::arbiters::ArbiterKind> {
    let mut builder =
        SystemBuilder::new(BusConfig::default()).fast_forward(fast_forward).trace_capacity(1 << 15);
    for (i, &(kind, a, b, size)) in masters.iter().enumerate() {
        builder = builder.master(
            format!("m{i}"),
            random_generator(kind, a, b, size).build_source(seed.wrapping_add(i as u64)),
        );
    }
    if with_faults {
        builder = builder
            .faults(FaultConfig {
                seed,
                slave_error_rate: 0.01,
                grant_drop_rate: 0.002,
                master_stall_rate: 0.003,
                master_stall_max: 5,
                ..FaultConfig::default()
            })
            .retry_policy(RetryPolicy { max_retries: 2, backoff_base: 1, backoff_factor: 2 })
            .timeout(300);
    }
    builder.arbiter(protocol_arbiter(arb, seed)).build().expect("valid system")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn fast_kernel_matches_cycle_kernel_on_random_systems(
        arb in 0usize..5,
        masters in prop::collection::vec((0u8..3, 0u64..1_000, 0u64..1_000, 1u32..17), 4),
        faults in prop::sample::select(vec![false, true]),
        seed in 1u64..1_000_000,
    ) {
        let mut cycle = random_system(arb, &masters, faults, seed, false);
        let mut fast = random_system(arb, &masters, faults, seed, true);
        cycle.run(2_500);
        fast.run(2_500);
        prop_assert_eq!(cycle.stats(), fast.stats(), "statistics diverged");
        prop_assert_eq!(cycle.trace(), fast.trace(), "trace streams diverged");
        prop_assert_eq!(cycle.fault_events(), fast.fault_events(), "fault logs diverged");
        prop_assert_eq!(cycle.now(), fast.now(), "clocks diverged");
    }

    #[test]
    fn idle_horizon_never_crosses_an_event(
        arb in 0usize..5,
        masters in prop::collection::vec((0u8..3, 0u64..1_000, 0u64..1_000, 1u32..17), 4),
        faults in prop::sample::select(vec![false, true]),
        seed in 1u64..1_000_000,
    ) {
        // The fast kernel may only jump to `idle_horizon()`; this drives
        // the *cycle* kernel one step at a time and asserts that every
        // cycle strictly below the advertised horizon really is
        // replicable idle time: no grants, no words, no fault events.
        let mut system = random_system(arb, &masters, faults, seed, false);
        for _ in 0..800u32 {
            let horizon = system.idle_horizon();
            let now = system.now();
            prop_assert!(horizon >= now, "horizon {:?} behind the clock {:?}", horizon, now);
            let grants = system.stats().grants;
            let words: u64 = system.stats().masters().iter().map(|m| m.words).sum();
            let fault_count = system.fault_events().len();
            system.step();
            if horizon > now {
                prop_assert_eq!(
                    system.stats().grants, grants,
                    "a grant fired at {:?}, inside the idle span ending at {:?}", now, horizon
                );
                let words_after: u64 =
                    system.stats().masters().iter().map(|m| m.words).sum();
                prop_assert_eq!(words_after, words, "words moved inside an idle span");
                prop_assert_eq!(
                    system.fault_events().len(), fault_count,
                    "a fault event was logged inside an idle span"
                );
            }
        }
    }
}
