//! End-to-end failover round trip through a full simulated system:
//! a primary lottery arbiter wedges for a fixed window, the failover
//! wrapper hands the bus to the round-robin backup, and once the
//! window passes the shadow probes re-promote the primary. Exactly
//! one failover, exactly one recovery, and no transaction is lost.

use lotterybus_repro::arbiters::FailoverArbiter;
use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{
    Arbiter, BusConfig, Cycle, Grant, MasterId, RequestMap, SystemBuilder,
};
use lotterybus_repro::traffic::GeneratorSpec;

/// A primary that goes catatonic for one fixed cycle window.
struct WedgedPrimary {
    inner: StaticLotteryArbiter,
    from: u64,
    until: u64,
}

impl Arbiter for WedgedPrimary {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        if (self.from..self.until).contains(&now.index()) {
            return None;
        }
        self.inner.arbitrate(requests, now)
    }

    fn name(&self) -> &str {
        "wedged-lottery"
    }
}

#[test]
fn primary_wedge_fails_over_then_recovers_end_to_end() {
    let tickets = TicketAssignment::new(vec![3, 2, 1]).expect("nonzero tickets");
    let primary = WedgedPrimary {
        inner: StaticLotteryArbiter::with_seed(tickets, 0xBEEF).expect("valid arbiter"),
        from: 5_000,
        until: 5_400,
    };
    let patience = 48;
    let recovery_window = 64;
    let arbiter = FailoverArbiter::with_recovery(Box::new(primary), 3, patience, recovery_window)
        .expect("valid failover config");

    let mut builder = SystemBuilder::new(BusConfig::default());
    for (i, load) in [0.4f64, 0.3, 0.2].into_iter().enumerate() {
        builder = builder.master(
            format!("m{i}"),
            GeneratorSpec::poisson(load / 8.0, lotterybus_repro::traffic::SizeDist::fixed(8))
                .build_source(90 + i as u64),
        );
    }
    let mut system = builder.arbiter(arbiter).build().expect("valid system");

    // Healthy run-up: the primary must still be in charge.
    system.run(5_000);
    {
        let arb = system.arbiter_mut();
        assert_eq!(arb.failovers(), 0, "no failover before the wedge");
        assert!(!arb.is_failed_over());
    }

    // Across the wedge: the saturated bus starves past `patience`
    // within the 400-cycle window, so the backup must take over, and
    // after the window the shadow probes re-promote the primary.
    system.run(5_000);
    let (failovers, recoveries, failed_over) = {
        let arb = system.arbiter_mut();
        (arb.failovers(), arb.recoveries(), arb.is_failed_over())
    };
    assert_eq!(failovers, 1, "the wedge must trip exactly one failover");
    assert_eq!(recoveries, 1, "the primary must be re-promoted once");
    assert!(!failed_over, "after recovery the primary is back in charge");

    // The handovers never lose work: everything issued is accounted
    // for, and the recovered primary keeps serving all masters.
    system.run(10_000);
    let stats = system.stats();
    for i in 0..3 {
        let m = stats.master(MasterId::new(i));
        assert!(m.transactions > 0, "master {i} still completes transactions");
        assert_eq!(m.aborted, 0, "master {i} lost transactions across the handover");
    }
    let arb = system.arbiter_mut();
    assert_eq!(
        (arb.failovers(), arb.recoveries()),
        (1, 1),
        "no further transitions after the round trip"
    );
}
