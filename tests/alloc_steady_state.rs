//! Proof of the zero-allocation steady state (PR 5 tentpole).
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! tallies allocations made by *this thread* while a flag is up. Each
//! case builds a saturated four-master system (always-requesting
//! [`SaturateSource`]s — the hot-path probe workload), warms it past
//! every one-time allocation (queue capacity growth, lottery decision
//! cache fills, scratch buffers), then raises the flag across a long
//! measured window and requires **zero** heap allocations.
//!
//! The tally is thread-local so the test harness's own threads cannot
//! pollute the count, and the flag is only consulted on allocation (not
//! deallocation), so dropping the system afterwards is free.
//!
//! [`SaturateSource`]: lotterybus_repro::traffic::SaturateSource

use lotterybus_repro::arbiters::ArbiterKind;
use lotterybus_repro::experiments::hotpath::{hot_arbiter, HOT_PROTOCOLS};
use lotterybus_repro::socsim::{BusConfig, Fleet, LaneBuilder, SystemBuilder};
use lotterybus_repro::traffic::{SaturateSource, SourceKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator plus a thread-local allocation tally.
struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the tally uses
// `try_with` so a call during TLS teardown degrades to "not counted"
// instead of panicking inside the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = COUNTING.try_with(|counting| {
            if counting.get() {
                let _ = ALLOCS.try_with(|allocs| allocs.set(allocs.get() + 1));
            }
        });
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = COUNTING.try_with(|counting| {
            if counting.get() {
                let _ = ALLOCS.try_with(|allocs| allocs.set(allocs.get() + 1));
            }
        });
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations made by a steady-state window of `measure` cycles after
/// `warmup` unmeasured cycles, for the given lineup protocol.
fn steady_state_allocs(protocol: &str, warmup: u64, measure: u64) -> u64 {
    let mut builder = SystemBuilder::new(BusConfig::default());
    for i in 0..4 {
        builder =
            builder.master(format!("C{}", i + 1), SourceKind::from(SaturateSource::new(0, 8)));
    }
    let mut system =
        builder.arbiter(hot_arbiter(protocol, 0xC0FFEE)).build().expect("probe system is valid");
    system.warm_up(warmup);
    ALLOCS.with(|allocs| allocs.set(0));
    COUNTING.with(|counting| counting.set(true));
    system.run(measure);
    COUNTING.with(|counting| counting.set(false));
    let counted = ALLOCS.with(|allocs| allocs.get());
    // The window must have actually exercised the hot path.
    assert!(
        system.stats().bus_utilization() > 0.95,
        "{protocol} probe is not saturated: utilization {}",
        system.stats().bus_utilization()
    );
    counted
}

#[test]
fn counter_sees_allocations_when_they_happen() {
    // Sanity-check the instrument itself: a deliberate allocation under
    // the flag must be counted, or the zero assertions below are
    // vacuous.
    ALLOCS.with(|allocs| allocs.set(0));
    COUNTING.with(|counting| counting.set(true));
    let v: Vec<u64> = Vec::with_capacity(32);
    COUNTING.with(|counting| counting.set(false));
    drop(v);
    assert!(ALLOCS.with(|allocs| allocs.get()) >= 1, "counting allocator missed a Vec");
}

#[test]
fn steady_state_makes_zero_allocations_for_every_lineup_protocol() {
    for protocol in HOT_PROTOCOLS {
        let allocs = steady_state_allocs(protocol, 2_000, 20_000);
        assert_eq!(
            allocs, 0,
            "{protocol}: {allocs} heap allocation(s) in a 20k-cycle steady-state window"
        );
    }
}

#[test]
fn fleet_steady_state_makes_zero_allocations_across_all_lineup_protocols() {
    // The whole lineup packed as one lockstep fleet — one lane per
    // protocol, each saturated. Past warm-up, advancing every lane must
    // be as allocation-free as the scalar kernel; the SoA batching may
    // move no per-cycle work onto the heap.
    let lanes = HOT_PROTOCOLS
        .iter()
        .map(|&protocol| {
            let mut lane: LaneBuilder<ArbiterKind, SourceKind> =
                LaneBuilder::new(BusConfig::default());
            for i in 0..4 {
                lane =
                    lane.master(format!("C{}", i + 1), SourceKind::from(SaturateSource::new(0, 8)));
            }
            lane.arbiter(hot_arbiter(protocol, 0xC0FFEE))
        })
        .collect();
    let mut fleet = Fleet::build(lanes).expect("probe fleet is valid");
    fleet.warm_up(2_000);
    ALLOCS.with(|allocs| allocs.set(0));
    COUNTING.with(|counting| counting.set(true));
    fleet.run(20_000);
    COUNTING.with(|counting| counting.set(false));
    let counted = ALLOCS.with(|allocs| allocs.get());
    for (lane, protocol) in HOT_PROTOCOLS.iter().enumerate() {
        assert!(
            fleet.stats(lane).bus_utilization() > 0.95,
            "{protocol} fleet lane is not saturated: utilization {}",
            fleet.stats(lane).bus_utilization()
        );
    }
    assert_eq!(
        counted,
        0,
        "{counted} heap allocation(s) in a 20k-cycle fleet steady-state window \
         across {} lanes",
        HOT_PROTOCOLS.len()
    );
}

#[test]
fn grouped_arbitration_steady_state_makes_zero_allocations() {
    // Grouped (shared-table) arbitration: four identically-configured
    // lanes per protocol, so each protocol's lanes lower into ONE SoA
    // decision kernel. Batched draws, shared ticket tables and the
    // TDMA wheel walk must all run off pre-built state — no per-cycle
    // or per-decision heap traffic.
    let pack: Vec<&str> = ["lottery-static", "tdma"]
        .into_iter()
        .flat_map(|protocol| std::iter::repeat(protocol).take(4))
        .collect();
    let lanes = pack
        .iter()
        .map(|&protocol| {
            let mut lane: LaneBuilder<ArbiterKind, SourceKind> =
                LaneBuilder::new(BusConfig::default());
            for i in 0..4 {
                lane =
                    lane.master(format!("C{}", i + 1), SourceKind::from(SaturateSource::new(0, 8)));
            }
            lane.arbiter(hot_arbiter(protocol, 0xC0FFEE))
        })
        .collect();
    let mut fleet = Fleet::build(lanes).expect("grouped fleet is valid");
    assert_eq!(fleet.lowered_lanes(), pack.len(), "every lane lowers into a kernel");
    assert_eq!(fleet.kernel_count(), 2, "identical lanes share one kernel per protocol");
    fleet.warm_up(2_000);
    ALLOCS.with(|allocs| allocs.set(0));
    COUNTING.with(|counting| counting.set(true));
    fleet.run(20_000);
    COUNTING.with(|counting| counting.set(false));
    let counted = ALLOCS.with(|allocs| allocs.get());
    for (lane, protocol) in pack.iter().enumerate() {
        assert!(
            fleet.stats(lane).bus_utilization() > 0.95,
            "{protocol} grouped lane {lane} is not saturated: utilization {}",
            fleet.stats(lane).bus_utilization()
        );
    }
    assert_eq!(
        counted, 0,
        "{counted} heap allocation(s) in a 20k-cycle grouped-arbitration window"
    );
}
