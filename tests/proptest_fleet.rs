//! Property tests for the SoA lockstep fleet kernel.
//!
//! Random heterogeneous lane packs — protocol, master count, ticket
//! spread, seeds, and traffic shapes all drawn independently per lane —
//! must be *lane-exact*: every lane's statistics identical to the same
//! system run solo through the scalar kernel. Two structural properties
//! ride along: a one-lane fleet degenerates to the scalar kernel, and
//! lane order is irrelevant (lanes never interact, so packing order is
//! a pure layout choice).

use lotterybus_repro::arbiters::{
    ArbiterKind, DeficitRoundRobinArbiter, RoundRobinArbiter, StaticPriorityArbiter,
};
use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{BusConfig, BusStats, Fleet, LaneBuilder, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SaturateSource, SizeDist, SourceKind};
use proptest::prelude::*;

const WARMUP: u64 = 200;
const MEASURE: u64 = 3_000;

/// One randomized master's traffic shape.
#[derive(Debug, Clone, Copy)]
enum SourceShape {
    Periodic { period: u64, phase: u64, words: u32 },
    Poisson { rate_millis: u32, words: u32 },
    Saturate { words: u32 },
}

impl SourceShape {
    fn build(self, seed: u64) -> SourceKind {
        match self {
            SourceShape::Periodic { period, phase, words } => {
                GeneratorSpec::periodic(period, phase, SizeDist::fixed(words)).build_kind(seed)
            }
            SourceShape::Poisson { rate_millis, words } => {
                GeneratorSpec::poisson(f64::from(rate_millis) / 1000.0, SizeDist::fixed(words))
                    .build_kind(seed)
            }
            SourceShape::Saturate { words } => SourceKind::from(SaturateSource::new(0, words)),
        }
    }
}

fn source_shape() -> impl Strategy<Value = SourceShape> {
    prop_oneof![
        (10u64..200, 0u64..50, 1u32..24).prop_map(|(period, phase, words)| SourceShape::Periodic {
            period,
            phase,
            words
        }),
        (1u32..200, 1u32..24)
            .prop_map(|(rate_millis, words)| SourceShape::Poisson { rate_millis, words }),
        (1u32..24).prop_map(|words| SourceShape::Saturate { words }),
    ]
}

/// Everything needed to build one lane twice: once into a fleet, once
/// as a solo scalar system. Master count is `tickets.len()`.
#[derive(Debug, Clone)]
struct LaneRecipe {
    protocol: usize,
    tickets: Vec<u32>,
    seed: u64,
    shapes: Vec<SourceShape>,
}

impl LaneRecipe {
    fn arbiter(&self) -> ArbiterKind {
        let masters = self.tickets.len();
        match self.protocol {
            0 => StaticLotteryArbiter::with_seed(
                TicketAssignment::new(self.tickets.clone()).expect("tickets are nonzero"),
                self.seed as u32 | 1,
            )
            .expect("small LUT fits")
            .into(),
            1 => RoundRobinArbiter::new(masters).expect("valid").into(),
            // Priorities must be unique; the offset keeps the random
            // ticket spread (< 16) while de-duplicating across masters.
            2 => {
                let priorities =
                    self.tickets.iter().enumerate().map(|(i, &t)| t + 16 * i as u32).collect();
                StaticPriorityArbiter::new(priorities).expect("valid").into()
            }
            _ => DeficitRoundRobinArbiter::new(&self.tickets, 8).expect("valid").into(),
        }
    }

    fn master_seed(&self, i: usize) -> u64 {
        self.seed.wrapping_add(i as u64 * 0x9E37_79B9)
    }

    fn lane(&self) -> LaneBuilder<ArbiterKind, SourceKind> {
        let mut lane: LaneBuilder<ArbiterKind, SourceKind> = LaneBuilder::new(BusConfig::default());
        for (i, shape) in self.shapes.iter().enumerate() {
            lane = lane.master(format!("M{}", i + 1), shape.build(self.master_seed(i)));
        }
        lane.arbiter(self.arbiter())
    }

    fn solo(&self) -> BusStats {
        let mut builder: SystemBuilder<ArbiterKind, SourceKind> =
            SystemBuilder::new(BusConfig::default());
        for (i, shape) in self.shapes.iter().enumerate() {
            builder = builder.master(format!("M{}", i + 1), shape.build(self.master_seed(i)));
        }
        let mut system = builder.arbiter(self.arbiter()).build().expect("valid random system");
        system.warm_up(WARMUP);
        system.run(MEASURE);
        system.stats().clone()
    }
}

fn lane_recipe() -> impl Strategy<Value = LaneRecipe> {
    // The vendored proptest has no flat-map: draw tickets and shapes at
    // the maximum width and truncate both to the drawn master count.
    (
        0usize..4,
        1usize..=4,
        0u64..u64::MAX,
        proptest::collection::vec(1u32..9, 4usize..=4),
        proptest::collection::vec(source_shape(), 4usize..=4),
    )
        .prop_map(|(protocol, masters, seed, mut tickets, mut shapes)| {
            tickets.truncate(masters);
            shapes.truncate(masters);
            LaneRecipe { protocol, tickets, seed, shapes }
        })
}

fn run_pack(recipes: &[LaneRecipe]) -> Vec<BusStats> {
    let mut fleet =
        Fleet::build(recipes.iter().map(LaneRecipe::lane).collect()).expect("valid lanes");
    fleet.warm_up(WARMUP);
    fleet.run(MEASURE);
    (0..fleet.len()).map(|i| fleet.stats(i).clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Heterogeneous random packs: every lane equals its solo run.
    #[test]
    fn random_lane_packs_are_lane_exact(
        recipes in proptest::collection::vec(lane_recipe(), 2..6),
    ) {
        let packed = run_pack(&recipes);
        for (i, (recipe, lane_stats)) in recipes.iter().zip(&packed).enumerate() {
            let solo = recipe.solo();
            prop_assert_eq!(
                lane_stats, &solo,
                "lane {} ({:?} protocol {}) diverged from its solo scalar run",
                i, recipe.shapes, recipe.protocol
            );
        }
    }

    /// A fleet of one lane IS the scalar kernel.
    #[test]
    fn single_lane_fleet_degenerates_to_scalar(recipe in lane_recipe()) {
        let packed = run_pack(std::slice::from_ref(&recipe));
        prop_assert_eq!(&packed[0], &recipe.solo());
    }

    /// Lane order is a pure layout choice: shuffling the pack permutes
    /// the outputs and changes nothing else.
    #[test]
    fn lane_order_is_irrelevant(
        recipes in proptest::collection::vec(lane_recipe(), 2..6),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let perm = permutation(recipes.len(), shuffle_seed);
        let in_order = run_pack(&recipes);
        let shuffled_recipes: Vec<LaneRecipe> =
            perm.iter().map(|&i| recipes[i].clone()).collect();
        let shuffled = run_pack(&shuffled_recipes);
        for (j, &i) in perm.iter().enumerate() {
            prop_assert_eq!(
                &shuffled[j], &in_order[i],
                "lane moved from slot {} to slot {} and changed its result", i, j
            );
        }
    }
}

/// Fisher–Yates permutation of `0..n` from a splitmix-stepped seed
/// (the vendored proptest has no shuffle strategy).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        indices.swap(i, j);
    }
    indices
}
