//! Conservation and accounting invariants, checked across every
//! arbitration protocol on the same workloads.

use lotterybus_repro::arbiters::{
    RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, TokenRingArbiter, WheelLayout,
};
use lotterybus_repro::lottery::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use lotterybus_repro::socsim::{Arbiter, BusConfig, MasterId, SystemBuilder};
use lotterybus_repro::traffic::{GeneratorSpec, SizeDist, TrafficClass};

fn all_arbiters() -> Vec<Box<dyn Arbiter>> {
    let tickets = TicketAssignment::new(vec![1, 2, 3, 4]).expect("valid");
    vec![
        Box::new(StaticPriorityArbiter::new(vec![1, 2, 3, 4]).expect("valid")),
        Box::new(RoundRobinArbiter::new(4).expect("valid")),
        Box::new(TokenRingArbiter::new(4).expect("valid")),
        Box::new(TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Contiguous).expect("valid")),
        Box::new(TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Interleaved).expect("valid")),
        Box::new(StaticLotteryArbiter::with_seed(tickets.clone(), 5).expect("valid")),
        Box::new(DynamicLotteryArbiter::with_seed(tickets, 5).expect("valid")),
    ]
}

fn check_conservation(arbiter: Box<dyn Arbiter>, class: TrafficClass) {
    let name = arbiter.name().to_owned();
    let weights = [1u32, 2, 3, 4];
    let mut builder = SystemBuilder::new(BusConfig::default());
    for (i, spec) in class.specs(&weights).into_iter().enumerate() {
        builder = builder.master(format!("C{i}"), spec.build_source(i as u64 + 40));
    }
    let mut system = builder.arbiter(arbiter).build().expect("valid");
    system.run(50_000);

    let stats = system.stats();
    let mut fractions_total = 0.0;
    for i in 0..4 {
        let id = MasterId::new(i);
        let port = system.master(id);
        let m = stats.master(id);
        // Words issued = words transferred + words still queued.
        assert_eq!(
            port.issued_words(),
            m.words + port.backlog_words(),
            "{name}/{class}: word conservation for C{i}"
        );
        // Completed-transaction accounting never exceeds what moved.
        assert!(m.completed_words <= m.words, "{name}/{class}: completed words");
        // Latency is at least one cycle per word on a word-serial bus.
        if let Some(lat) = m.cycles_per_word() {
            assert!(lat >= 1.0, "{name}/{class}: latency {lat} below transfer time");
        }
        fractions_total += stats.bandwidth_fraction(id);
    }
    // Shares sum to utilization and never exceed 1.
    assert!(
        (fractions_total - stats.bus_utilization()).abs() < 1e-9,
        "{name}/{class}: fractions {fractions_total} vs util {}",
        stats.bus_utilization()
    );
    assert!(stats.bus_utilization() <= 1.0 + 1e-9);
}

#[test]
fn words_are_conserved_under_every_arbiter_and_class() {
    for class in [TrafficClass::T1, TrafficClass::T3, TrafficClass::T6] {
        for arbiter in all_arbiters() {
            check_conservation(arbiter, class);
        }
    }
}

#[test]
fn determinism_same_seed_same_stats() {
    let run = |seed: u64| {
        let tickets = TicketAssignment::new(vec![2, 5]).expect("valid");
        let spec = GeneratorSpec::poisson(0.04, SizeDist::uniform(4, 20));
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("a", spec.build_source(seed))
            .master("b", spec.build_source(seed + 1))
            .arbiter(StaticLotteryArbiter::with_seed(tickets, 77).expect("valid"))
            .build()
            .expect("valid");
        system.run(30_000);
        system.stats().clone()
    };
    assert_eq!(run(5), run(5), "same seeds must reproduce identical statistics");
    assert_ne!(run(5), run(6), "different seeds must differ");
}

#[test]
fn stall_cycles_are_accounted_not_lost() {
    let bus = BusConfig { arbitration_overhead: 1, ..BusConfig::default() };
    let spec = GeneratorSpec::poisson(0.05, SizeDist::fixed(16));
    let mut system = SystemBuilder::new(bus)
        .master("a", spec.build_source(1))
        .master("b", spec.build_source(2))
        .arbiter(RoundRobinArbiter::new(2).expect("valid"))
        .build()
        .expect("valid");
    system.run(50_000);
    let stats = system.stats();
    // Busy + stalls never exceed elapsed time, and the overhead shows up.
    assert!(stats.busy_cycles + stats.stall_cycles <= stats.cycles);
    assert!(stats.stall_cycles > 0);
    // One stall cycle per grant.
    assert_eq!(stats.stall_cycles, stats.grants);
}
