//! Cross-crate integration tests: full systems assembled through the
//! umbrella crate's public API.

use lotterybus_repro::arbiters::{
    RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, TokenRingArbiter, WheelLayout,
};
use lotterybus_repro::lottery::{
    self, DynamicLotteryArbiter, QueueProportionalPolicy, StaticLotteryArbiter, TicketAssignment,
};
use lotterybus_repro::socsim::{Arbiter, BusConfig, MasterId, SystemBuilder};
use lotterybus_repro::traffic::{classes::saturating_specs, GeneratorSpec, SizeDist};

fn saturated_system(arbiter: Box<dyn Arbiter>) -> lotterybus_repro::socsim::System {
    let mut builder = SystemBuilder::new(BusConfig::default());
    for (i, spec) in saturating_specs(4).into_iter().enumerate() {
        builder = builder.master(format!("C{}", i + 1), spec.build_source(i as u64 + 1));
    }
    builder.arbiter(arbiter).build().expect("valid system")
}

#[test]
fn lottery_shares_track_tickets_end_to_end() {
    let tickets = TicketAssignment::new(vec![1, 2, 3, 4]).expect("valid");
    let mut system =
        saturated_system(Box::new(StaticLotteryArbiter::with_seed(tickets, 11).expect("valid")));
    system.warm_up(10_000);
    system.run(200_000);
    for (i, expected) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
        let got = system.stats().bandwidth_fraction(MasterId::new(i));
        assert!((got - expected).abs() < 0.03, "C{}: {got:.3} vs {expected}", i + 1);
    }
}

#[test]
fn dynamic_lottery_matches_static_under_constant_tickets() {
    let tickets = TicketAssignment::new(vec![1, 3]).expect("valid");
    let spec = GeneratorSpec::poisson(0.05, SizeDist::fixed(16));

    let mut totals = Vec::new();
    let arbiters: Vec<Box<dyn Arbiter>> = vec![
        Box::new(StaticLotteryArbiter::with_seed(tickets.clone(), 3).expect("valid")),
        Box::new(DynamicLotteryArbiter::with_seed(tickets, 3).expect("valid")),
    ];
    for arbiter in arbiters {
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("a", spec.build_source(1))
            .master("b", spec.build_source(2))
            .arbiter(arbiter)
            .build()
            .expect("valid");
        system.warm_up(5_000);
        system.run(100_000);
        totals.push(system.stats().bandwidth_fraction(MasterId::new(1)));
    }
    // Both managers give master B ~75% of the saturated bus.
    assert!((totals[0] - 0.75).abs() < 0.03, "static {}", totals[0]);
    assert!((totals[1] - 0.75).abs() < 0.03, "dynamic {}", totals[1]);
}

#[test]
fn starvation_freedom_matches_closed_form_bound() {
    // Empirically verify the paper's starvation bound on a live bus: a
    // 1-of-10 ticket holder whose own demand is light (well below its
    // entitlement) must have each request served within the number of
    // lotteries predicted for 99.9% confidence, even though a saturating
    // competitor holds 9 of the 10 tickets.
    let tickets = TicketAssignment::new(vec![1, 9]).expect("valid");
    let weak = GeneratorSpec::poisson(0.002, SizeDist::fixed(16));
    let strong = GeneratorSpec::poisson(0.08, SizeDist::fixed(16));
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("weak", weak.build_source(1))
        .master("strong", strong.build_source(2))
        .arbiter(StaticLotteryArbiter::with_seed(tickets, 23).expect("valid"))
        .build()
        .expect("valid system");
    system.run(400_000);
    let stats = system.stats();
    let weak_stats = stats.master(MasterId::new(0));
    assert!(weak_stats.transactions > 100, "weak master served {} times", weak_stats.transactions);
    // Each lottery loss costs at most one 16-word competitor burst; the
    // 99.9%-confidence bound on lotteries-to-win therefore bounds waits.
    let bound = lottery::analysis::lotteries_for_confidence(1, 10, 0.999);
    let mean_wait_grants = weak_stats.wait_per_transaction().expect("served") / 16.0;
    assert!(
        mean_wait_grants < f64::from(bound),
        "mean wait {mean_wait_grants:.1} grants vs bound {bound}"
    );
    // And the mean should sit near the expectation T/t = 10 losses.
    assert!(mean_wait_grants < 2.0 * 10.0, "mean wait {mean_wait_grants:.1} grants");
}

#[test]
fn every_arbiter_drives_a_saturated_bus_to_full_utilization() {
    let arbiters: Vec<Box<dyn Arbiter>> = vec![
        Box::new(StaticPriorityArbiter::new(vec![1, 2, 3, 4]).expect("valid")),
        Box::new(RoundRobinArbiter::new(4).expect("valid")),
        Box::new(TdmaArbiter::new(&[1, 2, 3, 4], WheelLayout::Contiguous).expect("valid")),
        Box::new(
            StaticLotteryArbiter::with_seed(
                TicketAssignment::new(vec![1, 2, 3, 4]).expect("valid"),
                9,
            )
            .expect("valid"),
        ),
    ];
    for arbiter in arbiters {
        let name = arbiter.name().to_owned();
        let mut system = saturated_system(arbiter);
        system.warm_up(5_000);
        system.run(50_000);
        let util = system.stats().bus_utilization();
        assert!(util > 0.98, "{name}: utilization {util:.3}");
    }
}

#[test]
fn token_ring_wastes_cycles_on_hops() {
    // With idle masters sitting between the two active ones on the
    // ring, every token hand-off burns hop cycles, so the bus cannot
    // reach full utilization even though demand far exceeds capacity.
    let heavy = GeneratorSpec::poisson(0.06, SizeDist::fixed(16));
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("active0", heavy.build_source(1))
        .master("idle1", GeneratorSpec::poisson(0.0, SizeDist::fixed(1)).build_source(2))
        .master("active2", heavy.build_source(3))
        .master("idle3", GeneratorSpec::poisson(0.0, SizeDist::fixed(1)).build_source(4))
        .arbiter(TokenRingArbiter::new(4).expect("valid"))
        .build()
        .expect("valid system");
    system.warm_up(5_000);
    system.run(50_000);
    let util = system.stats().bus_utilization();
    assert!(util > 0.8, "utilization {util:.3}");
    assert!(util < 0.99, "token hops must cost something: {util:.3}");
}

#[test]
fn lottery_tail_latency_beats_tdma_on_adversarial_bursts() {
    use lotterybus_repro::arbiters::{TdmaArbiter, WheelLayout};
    use lotterybus_repro::traffic::TrafficClass;
    // The T6 construction (synchronized clusters): compare the
    // latency-critical component's p99 — the tail is where TDMA's
    // positional waits show up hardest.
    let weights = [1u32, 2, 3, 4];
    let block = 64;
    let tail_and_mean = |arbiter: Box<dyn Arbiter>| -> (u64, f64) {
        let mut builder = SystemBuilder::new(BusConfig::default());
        for (i, spec) in TrafficClass::T6.specs_with_frame(&weights, block).into_iter().enumerate()
        {
            builder = builder.master(format!("C{i}"), spec.build_source(i as u64 + 7));
        }
        let mut system = builder.arbiter(arbiter).build().expect("valid");
        system.warm_up(10_000);
        system.run(150_000);
        let m = system.stats().master(MasterId::new(3));
        (m.latency_quantile(0.99).expect("served"), m.cycles_per_word().expect("served"))
    };
    let slots: Vec<u32> = weights.iter().map(|w| w * block).collect();
    let (tdma_p99, tdma_mean) =
        tail_and_mean(Box::new(TdmaArbiter::new(&slots, WheelLayout::Contiguous).expect("valid")));
    let (lottery_p99, lottery_mean) = tail_and_mean(Box::new(
        StaticLotteryArbiter::with_seed(
            TicketAssignment::new(weights.to_vec()).expect("valid"),
            13,
        )
        .expect("valid"),
    ));
    // The histogram buckets are 2x-coarse, so the tail bound may tie;
    // it must never favour TDMA, and the mean must clearly favour the
    // lottery.
    assert!(
        tdma_p99 >= lottery_p99,
        "TDMA p99 {tdma_p99} should not beat lottery p99 {lottery_p99}"
    );
    assert!(
        tdma_mean > 1.5 * lottery_mean,
        "TDMA mean {tdma_mean:.2} should far exceed lottery {lottery_mean:.2}"
    );
}

#[test]
fn compensation_tickets_equalize_heterogeneous_message_sizes() {
    // Equal tickets, but master 0 sends 4-word messages and master 1
    // 16-word messages; both saturate. Plain lottery splits *wins*
    // evenly, so words go ~1:4; compensation tickets restore the 1:1
    // word split (Waldspurger's technique, paper reference [16]).
    let run = |compensate: bool| -> (f64, f64) {
        let tickets = TicketAssignment::new(vec![1, 1]).expect("valid");
        let mut arbiter = DynamicLotteryArbiter::with_seed(tickets, 31).expect("valid");
        if compensate {
            arbiter.enable_compensation(16);
        }
        // Both heavily oversubscribed (0.8 offered load each), so the
        // arbiter alone decides the split.
        let short = GeneratorSpec::poisson(0.2, SizeDist::fixed(4));
        let long = GeneratorSpec::poisson(0.05, SizeDist::fixed(16));
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("short", short.build_source(1))
            .master("long", long.build_source(2))
            .arbiter(arbiter)
            .build()
            .expect("valid");
        system.warm_up(10_000);
        system.run(150_000);
        (
            system.stats().bandwidth_fraction(MasterId::new(0)),
            system.stats().bandwidth_fraction(MasterId::new(1)),
        )
    };
    let (plain_short, plain_long) = run(false);
    assert!(
        plain_long > 2.0 * plain_short,
        "plain lottery biases words toward long messages: {plain_short:.3} vs {plain_long:.3}"
    );
    let (comp_short, comp_long) = run(true);
    let ratio = comp_long / comp_short;
    assert!(
        (0.6..1.6).contains(&ratio),
        "compensated shares {comp_short:.3} vs {comp_long:.3} (ratio {ratio:.2})"
    );
}

#[test]
fn queue_proportional_policy_runs_end_to_end() {
    let tickets = TicketAssignment::new(vec![1, 1]).expect("valid");
    let mut arbiter = DynamicLotteryArbiter::with_seed(tickets, 3).expect("valid");
    arbiter.set_policy(Box::new(QueueProportionalPolicy::new(vec![1, 1])), 16);
    let heavy = GeneratorSpec::poisson(0.06, SizeDist::fixed(16));
    let light = GeneratorSpec::poisson(0.01, SizeDist::fixed(16));
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("heavy", heavy.build_source(1))
        .master("light", light.build_source(2))
        .arbiter(arbiter)
        .build()
        .expect("valid");
    system.warm_up(5_000);
    system.run(100_000);
    let stats = system.stats();
    // The backlogged master receives the lion's share of the bus.
    assert!(
        stats.bandwidth_fraction(MasterId::new(0)) > 0.6,
        "heavy got {:.3}",
        stats.bandwidth_fraction(MasterId::new(0))
    );
    // The light master is not starved.
    assert!(stats.master(MasterId::new(1)).transactions > 50);
}
